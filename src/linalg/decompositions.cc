#include "linalg/decompositions.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dangoron {

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("CholeskyFactor: matrix is ", a.rows(),
                                   "x", a.cols(), ", not square");
  }
  if (!a.IsSymmetric(1e-9)) {
    return Status::InvalidArgument("CholeskyFactor: matrix is not symmetric");
  }
  const int64_t n = a.rows();
  Matrix lower(n, n);
  for (int64_t j = 0; j < n; ++j) {
    double diag = a.At(j, j);
    for (int64_t k = 0; k < j; ++k) {
      diag -= lower.At(j, k) * lower.At(j, k);
    }
    if (diag <= 0.0) {
      return Status::FailedPrecondition(
          "CholeskyFactor: matrix is not positive definite (pivot ", j, ")");
    }
    const double ljj = std::sqrt(diag);
    lower.At(j, j) = ljj;
    for (int64_t i = j + 1; i < n; ++i) {
      double sum = a.At(i, j);
      for (int64_t k = 0; k < j; ++k) {
        sum -= lower.At(i, k) * lower.At(j, k);
      }
      lower.At(i, j) = sum / ljj;
    }
  }
  return lower;
}

Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                int max_sweeps,
                                                double off_diag_tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("JacobiEigenSymmetric: not square");
  }
  if (!a.IsSymmetric(1e-9)) {
    return Status::InvalidArgument("JacobiEigenSymmetric: not symmetric");
  }
  const int64_t n = a.rows();
  Matrix work = a;
  Matrix vectors = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off_diag_max = 0.0;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        off_diag_max = std::fmax(off_diag_max, std::fabs(work.At(p, q)));
      }
    }
    if (off_diag_max < off_diag_tol) {
      break;
    }
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = work.At(p, q);
        if (std::fabs(apq) < off_diag_tol * 1e-2) {
          continue;
        }
        const double app = work.At(p, p);
        const double aqq = work.At(q, q);
        // Classic Jacobi rotation angle.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (int64_t k = 0; k < n; ++k) {
          const double akp = work.At(k, p);
          const double akq = work.At(k, q);
          work.At(k, p) = c * akp - s * akq;
          work.At(k, q) = s * akp + c * akq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double apk = work.At(p, k);
          const double aqk = work.At(q, k);
          work.At(p, k) = c * apk - s * aqk;
          work.At(q, k) = s * apk + c * aqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double vkp = vectors.At(k, p);
          const double vkq = vectors.At(k, q);
          vectors.At(k, p) = c * vkp - s * vkq;
          vectors.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenDecomposition decomposition;
  decomposition.eigenvalues.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    decomposition.eigenvalues[static_cast<size_t>(i)] = work.At(i, i);
  }
  // Sort eigenpairs descending by eigenvalue.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return decomposition.eigenvalues[static_cast<size_t>(x)] >
           decomposition.eigenvalues[static_cast<size_t>(y)];
  });
  std::vector<double> sorted_values(static_cast<size_t>(n));
  Matrix sorted_vectors(n, n);
  for (int64_t j = 0; j < n; ++j) {
    const int64_t src = order[static_cast<size_t>(j)];
    sorted_values[static_cast<size_t>(j)] =
        decomposition.eigenvalues[static_cast<size_t>(src)];
    for (int64_t i = 0; i < n; ++i) {
      sorted_vectors.At(i, j) = vectors.At(i, src);
    }
  }
  decomposition.eigenvalues = std::move(sorted_values);
  decomposition.eigenvectors = std::move(sorted_vectors);
  return decomposition;
}

Result<Matrix> NearestCorrelationMatrix(const Matrix& a, double min_eigenvalue,
                                        int max_iterations) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("NearestCorrelationMatrix: not square");
  }
  const int64_t n = a.rows();
  Matrix current = a;
  // Symmetrize defensively.
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      const double mean = 0.5 * (current.At(i, j) + current.At(j, i));
      current.At(i, j) = mean;
      current.At(j, i) = mean;
    }
  }

  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    ASSIGN_OR_RETURN(EigenDecomposition eigen,
                     JacobiEigenSymmetric(current));
    bool needed_clipping = false;
    for (double& value : eigen.eigenvalues) {
      if (value < min_eigenvalue) {
        value = min_eigenvalue;
        needed_clipping = true;
      }
    }
    // Reassemble V * diag(lambda) * V^T.
    Matrix scaled = eigen.eigenvectors;
    for (int64_t j = 0; j < n; ++j) {
      const double lambda = eigen.eigenvalues[static_cast<size_t>(j)];
      for (int64_t i = 0; i < n; ++i) {
        scaled.At(i, j) *= lambda;
      }
    }
    current = scaled.Multiply(eigen.eigenvectors.Transposed());

    // Renormalize to a unit diagonal: D^{-1/2} A D^{-1/2}.
    for (int64_t i = 0; i < n; ++i) {
      const double d = current.At(i, i);
      if (d <= 0.0) {
        return Status::Internal(
            "NearestCorrelationMatrix: non-positive diagonal after "
            "projection");
      }
    }
    std::vector<double> scale(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      scale[static_cast<size_t>(i)] = 1.0 / std::sqrt(current.At(i, i));
    }
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        current.At(i, j) *= scale[static_cast<size_t>(i)] *
                            scale[static_cast<size_t>(j)];
      }
    }

    if (!needed_clipping) {
      break;
    }
  }
  return current;
}

}  // namespace dangoron
