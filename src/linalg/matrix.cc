#include "linalg/matrix.h"

#include <cmath>

namespace dangoron {

Matrix Matrix::Multiply(const Matrix& other) const {
  CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t k = 0; k < cols_; ++k) {
      const double a = At(i, k);
      if (a == 0.0) {
        continue;
      }
      for (int64_t j = 0; j < other.cols_; ++j) {
        out.At(i, j) += a * other.At(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t j = 0; j < cols_; ++j) {
      out.At(j, i) = At(i, j);
    }
  }
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  CHECK_EQ(rows_, other.rows_);
  CHECK_EQ(cols_, other.cols_);
  double max_diff = 0.0;
  for (size_t i = 0; i < values_.size(); ++i) {
    max_diff = std::fmax(max_diff, std::fabs(values_[i] - other.values_[i]));
  }
  return max_diff;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) {
    return false;
  }
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t j = i + 1; j < cols_; ++j) {
      if (std::fabs(At(i, j) - At(j, i)) > tol) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace dangoron
