#ifndef DANGORON_LINALG_MATRIX_H_
#define DANGORON_LINALG_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace dangoron {

/// Minimal dense row-major matrix of doubles, sized for the Tomborg
/// correlation-matrix pipeline (N up to a few thousand).
class Matrix {
 public:
  Matrix() = default;
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        values_(static_cast<size_t>(rows * cols), 0.0) {
    CHECK_GE(rows, 0);
    CHECK_GE(cols, 0);
  }

  /// Identity matrix of size n.
  static Matrix Identity(int64_t n) {
    Matrix m(n, n);
    for (int64_t i = 0; i < n; ++i) {
      m.At(i, i) = 1.0;
    }
    return m;
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  double& At(int64_t i, int64_t j) {
    DCHECK_GE(i, 0);
    DCHECK_LT(i, rows_);
    DCHECK_GE(j, 0);
    DCHECK_LT(j, cols_);
    return values_[static_cast<size_t>(i * cols_ + j)];
  }
  double At(int64_t i, int64_t j) const {
    DCHECK_GE(i, 0);
    DCHECK_LT(i, rows_);
    DCHECK_GE(j, 0);
    DCHECK_LT(j, cols_);
    return values_[static_cast<size_t>(i * cols_ + j)];
  }

  /// C = this * other.
  Matrix Multiply(const Matrix& other) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// Largest |a_ij - b_ij|; both matrices must have equal shapes.
  double MaxAbsDiff(const Matrix& other) const;

  /// True when |a_ij - a_ji| <= tol for all i, j (square matrices only).
  bool IsSymmetric(double tol = 1e-12) const;

  const std::vector<double>& values() const { return values_; }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> values_;
};

}  // namespace dangoron

#endif  // DANGORON_LINALG_MATRIX_H_
