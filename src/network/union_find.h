#ifndef DANGORON_NETWORK_UNION_FIND_H_
#define DANGORON_NETWORK_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

namespace dangoron {

/// Disjoint-set forest with union by size and path halving; used for
/// connected-component analysis of network snapshots.
class UnionFind {
 public:
  explicit UnionFind(int64_t n)
      : parent_(static_cast<size_t>(n)), size_(static_cast<size_t>(n), 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int64_t Find(int64_t x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }

  /// Merges the sets of a and b; returns true if they were distinct.
  bool Union(int64_t a, int64_t b) {
    int64_t ra = Find(a);
    int64_t rb = Find(b);
    if (ra == rb) {
      return false;
    }
    if (size_[static_cast<size_t>(ra)] < size_[static_cast<size_t>(rb)]) {
      std::swap(ra, rb);
    }
    parent_[static_cast<size_t>(rb)] = ra;
    size_[static_cast<size_t>(ra)] += size_[static_cast<size_t>(rb)];
    return true;
  }

  bool Connected(int64_t a, int64_t b) { return Find(a) == Find(b); }

  /// Size of the set containing x.
  int64_t ComponentSize(int64_t x) {
    return size_[static_cast<size_t>(Find(x))];
  }

 private:
  std::vector<int64_t> parent_;
  std::vector<int64_t> size_;
};

}  // namespace dangoron

#endif  // DANGORON_NETWORK_UNION_FIND_H_
