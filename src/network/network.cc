#include "network/network.h"

#include <algorithm>

#include "common/logging.h"
#include "network/union_find.h"

namespace dangoron {

NetworkSnapshot::NetworkSnapshot(int64_t num_nodes,
                                 std::span<const Edge> edges)
    : num_nodes_(num_nodes), edges_(edges.begin(), edges.end()) {
  CHECK_GE(num_nodes, 0);
  // Degree counting pass, then CSR fill (both directions of each edge).
  offsets_.assign(static_cast<size_t>(num_nodes + 1), 0);
  for (const Edge& edge : edges_) {
    DCHECK_LT(edge.i, edge.j);
    DCHECK_LT(edge.j, num_nodes);
    ++offsets_[static_cast<size_t>(edge.i) + 1];
    ++offsets_[static_cast<size_t>(edge.j) + 1];
  }
  for (int64_t v = 0; v < num_nodes; ++v) {
    offsets_[static_cast<size_t>(v) + 1] += offsets_[static_cast<size_t>(v)];
  }
  neighbors_.resize(static_cast<size_t>(offsets_[static_cast<size_t>(num_nodes)]));
  std::vector<int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& edge : edges_) {
    neighbors_[static_cast<size_t>(cursor[static_cast<size_t>(edge.i)]++)] =
        edge.j;
    neighbors_[static_cast<size_t>(cursor[static_cast<size_t>(edge.j)]++)] =
        edge.i;
  }
  for (int64_t v = 0; v < num_nodes; ++v) {
    std::sort(neighbors_.begin() + offsets_[static_cast<size_t>(v)],
              neighbors_.begin() + offsets_[static_cast<size_t>(v) + 1]);
  }
}

std::span<const int32_t> NetworkSnapshot::Neighbors(int64_t v) const {
  DCHECK_GE(v, 0);
  DCHECK_LT(v, num_nodes_);
  const int64_t begin = offsets_[static_cast<size_t>(v)];
  const int64_t end = offsets_[static_cast<size_t>(v) + 1];
  return std::span<const int32_t>(neighbors_.data() + begin,
                                  static_cast<size_t>(end - begin));
}

int64_t NetworkSnapshot::Degree(int64_t v) const {
  return static_cast<int64_t>(Neighbors(v).size());
}

double NetworkSnapshot::Density() const {
  if (num_nodes_ < 2) {
    return 0.0;
  }
  const double possible =
      static_cast<double>(num_nodes_) * static_cast<double>(num_nodes_ - 1) /
      2.0;
  return static_cast<double>(num_edges()) / possible;
}

bool NetworkSnapshot::HasEdge(int64_t i, int64_t j) const {
  if (i == j) {
    return false;
  }
  std::span<const int32_t> neighbors = Neighbors(i);
  return std::binary_search(neighbors.begin(), neighbors.end(),
                            static_cast<int32_t>(j));
}

DegreeStats ComputeDegreeStats(const NetworkSnapshot& network) {
  DegreeStats stats;
  if (network.num_nodes() == 0) {
    return stats;
  }
  stats.min = network.num_nodes();
  int64_t total = 0;
  for (int64_t v = 0; v < network.num_nodes(); ++v) {
    const int64_t degree = network.Degree(v);
    stats.min = std::min(stats.min, degree);
    stats.max = std::max(stats.max, degree);
    total += degree;
    if (degree == 0) {
      ++stats.isolated;
    }
  }
  stats.mean = static_cast<double>(total) /
               static_cast<double>(network.num_nodes());
  return stats;
}

ComponentStats ComputeComponentStats(const NetworkSnapshot& network) {
  ComponentStats stats;
  const int64_t n = network.num_nodes();
  if (n == 0) {
    return stats;
  }
  UnionFind forest(n);
  int64_t merges = 0;
  for (const Edge& edge : network.edges()) {
    if (forest.Union(edge.i, edge.j)) {
      ++merges;
    }
  }
  stats.num_components = n - merges;
  for (int64_t v = 0; v < n; ++v) {
    stats.largest_component =
        std::max(stats.largest_component, forest.ComponentSize(v));
  }
  return stats;
}

double AverageClusteringCoefficient(const NetworkSnapshot& network) {
  const int64_t n = network.num_nodes();
  if (n == 0) {
    return 0.0;
  }
  double total = 0.0;
  for (int64_t v = 0; v < n; ++v) {
    std::span<const int32_t> neighbors = network.Neighbors(v);
    const int64_t degree = static_cast<int64_t>(neighbors.size());
    if (degree < 2) {
      continue;
    }
    int64_t closed = 0;
    for (size_t a = 0; a < neighbors.size(); ++a) {
      for (size_t b = a + 1; b < neighbors.size(); ++b) {
        if (network.HasEdge(neighbors[a], neighbors[b])) {
          ++closed;
        }
      }
    }
    total += 2.0 * static_cast<double>(closed) /
             (static_cast<double>(degree) * static_cast<double>(degree - 1));
  }
  return total / static_cast<double>(n);
}

EdgeDynamics CompareSnapshots(const NetworkSnapshot& before,
                              const NetworkSnapshot& after) {
  EdgeDynamics dynamics;
  // Both edge lists are sorted by (i, j): a linear merge.
  std::span<const Edge> a = before.edges();
  std::span<const Edge> b = after.edges();
  size_t x = 0;
  size_t y = 0;
  auto less = [](const Edge& p, const Edge& q) {
    return p.i != q.i ? p.i < q.i : p.j < q.j;
  };
  while (x < a.size() && y < b.size()) {
    if (less(a[x], b[y])) {
      ++dynamics.removed;
      ++x;
    } else if (less(b[y], a[x])) {
      ++dynamics.added;
      ++y;
    } else {
      ++dynamics.persisted;
      ++x;
      ++y;
    }
  }
  dynamics.removed += static_cast<int64_t>(a.size() - x);
  dynamics.added += static_cast<int64_t>(b.size() - y);
  const int64_t total =
      dynamics.added + dynamics.removed + dynamics.persisted;
  dynamics.jaccard =
      total == 0 ? 1.0
                 : static_cast<double>(dynamics.persisted) /
                       static_cast<double>(total);
  return dynamics;
}

DynamicsSummary SummarizeDynamics(const CorrelationMatrixSeries& series) {
  DynamicsSummary summary;
  const int64_t windows = series.num_windows();
  summary.edges_per_window.reserve(static_cast<size_t>(windows));
  summary.density_per_window.reserve(static_cast<size_t>(windows));

  std::optional<NetworkSnapshot> previous;
  double jaccard_sum = 0.0;
  for (int64_t k = 0; k < windows; ++k) {
    NetworkSnapshot current(series.num_series(), series.WindowEdges(k));
    summary.edges_per_window.push_back(current.num_edges());
    summary.density_per_window.push_back(current.Density());
    if (previous.has_value()) {
      const EdgeDynamics dynamics = CompareSnapshots(*previous, current);
      summary.jaccard_per_step.push_back(dynamics.jaccard);
      jaccard_sum += dynamics.jaccard;
    }
    previous.emplace(std::move(current));
  }
  summary.mean_jaccard =
      summary.jaccard_per_step.empty()
          ? 1.0
          : jaccard_sum /
                static_cast<double>(summary.jaccard_per_step.size());
  return summary;
}

}  // namespace dangoron
