#ifndef DANGORON_NETWORK_NETWORK_H_
#define DANGORON_NETWORK_NETWORK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "engine/query.h"

namespace dangoron {

/// One correlation-network snapshot: the graph of a single thresholded
/// correlation matrix (nodes = series, edges = pairs >= beta).
class NetworkSnapshot {
 public:
  /// Builds a snapshot over `num_nodes` nodes from sorted engine edges.
  NetworkSnapshot(int64_t num_nodes, std::span<const Edge> edges);

  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  std::span<const Edge> edges() const { return edges_; }

  /// Neighbors of node `v`, ascending.
  std::span<const int32_t> Neighbors(int64_t v) const;

  /// Degree of node `v`.
  int64_t Degree(int64_t v) const;

  /// Edge density: edges / (n choose 2).
  double Density() const;

  /// True if (i, j) is an edge (binary search over the adjacency list).
  bool HasEdge(int64_t i, int64_t j) const;

 private:
  int64_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  /// CSR adjacency: neighbors_ concatenated per node, offsets_ has n + 1.
  std::vector<int32_t> neighbors_;
  std::vector<int64_t> offsets_;
};

/// Degree distribution summary of a snapshot.
struct DegreeStats {
  int64_t min = 0;
  int64_t max = 0;
  double mean = 0.0;
  /// Count of isolated nodes.
  int64_t isolated = 0;
};
DegreeStats ComputeDegreeStats(const NetworkSnapshot& network);

/// Connected-component summary.
struct ComponentStats {
  int64_t num_components = 0;     ///< counting isolated nodes as components
  int64_t largest_component = 0;  ///< node count of the giant component
};
ComponentStats ComputeComponentStats(const NetworkSnapshot& network);

/// Global average of the local clustering coefficient (nodes with degree
/// < 2 contribute 0), computed exactly via adjacency intersection.
double AverageClusteringCoefficient(const NetworkSnapshot& network);

/// Edge dynamics between two consecutive snapshots — the "blinking links"
/// view of climate-network analysis.
struct EdgeDynamics {
  int64_t added = 0;     ///< edges present now but not before
  int64_t removed = 0;   ///< edges present before but not now
  int64_t persisted = 0; ///< edges present in both
  double jaccard = 1.0;  ///< persisted / union (1.0 for two empty graphs)
};
EdgeDynamics CompareSnapshots(const NetworkSnapshot& before,
                              const NetworkSnapshot& after);

/// Per-window network summary of a whole query result.
struct DynamicsSummary {
  std::vector<int64_t> edges_per_window;
  std::vector<double> density_per_window;
  std::vector<double> jaccard_per_step;  ///< size num_windows - 1
  double mean_jaccard = 1.0;
};
DynamicsSummary SummarizeDynamics(const CorrelationMatrixSeries& series);

}  // namespace dangoron

#endif  // DANGORON_NETWORK_NETWORK_H_
