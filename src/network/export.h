#ifndef DANGORON_NETWORK_EXPORT_H_
#define DANGORON_NETWORK_EXPORT_H_

#include <string>

#include "common/status.h"
#include "engine/query.h"
#include "network/network.h"

namespace dangoron {

/// Writes one window's network as a weighted edge list:
/// `<name_i>\t<name_j>\t<correlation>` per line. `names` may be empty, in
/// which case numeric node ids are written.
Status WriteEdgeList(const NetworkSnapshot& network,
                     const std::vector<std::string>& names,
                     const std::string& path);

/// Writes one window's network in Graphviz DOT format (undirected graph,
/// edge weight = correlation, penwidth scaled by |correlation|), ready for
/// `neato -Tpng`.
Status WriteGraphviz(const NetworkSnapshot& network,
                     const std::vector<std::string>& names,
                     const std::string& path);

/// Writes the whole query result as a long-format CSV:
/// `window,i,j,correlation` — the exchange format for plotting the dynamic
/// network outside C++.
Status WriteSeriesCsv(const CorrelationMatrixSeries& series,
                      const std::string& path);

}  // namespace dangoron

#endif  // DANGORON_NETWORK_EXPORT_H_
