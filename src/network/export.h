#ifndef DANGORON_NETWORK_EXPORT_H_
#define DANGORON_NETWORK_EXPORT_H_

#include <fstream>
#include <string>

#include "common/status.h"
#include "engine/query.h"
#include "engine/window_sink.h"
#include "network/network.h"

namespace dangoron {

/// Writes one window's network as a weighted edge list:
/// `<name_i>\t<name_j>\t<correlation>` per line. `names` may be empty, in
/// which case numeric node ids are written.
Status WriteEdgeList(const NetworkSnapshot& network,
                     const std::vector<std::string>& names,
                     const std::string& path);

/// Writes one window's network in Graphviz DOT format (undirected graph,
/// edge weight = correlation, penwidth scaled by |correlation|), ready for
/// `neato -Tpng`.
Status WriteGraphviz(const NetworkSnapshot& network,
                     const std::vector<std::string>& names,
                     const std::string& path);

/// Writes the whole query result as a long-format CSV:
/// `window,i,j,correlation` — the exchange format for plotting the dynamic
/// network outside C++. Implemented over the same row writer as
/// SeriesCsvSink, so the two paths emit identical files.
Status WriteSeriesCsv(const CorrelationMatrixSeries& series,
                      const std::string& path);

/// The export leg of the window pipeline: a WindowSink that appends each
/// emitted window's edges to a long-format CSV (`window,i,j,correlation`)
/// as it arrives — rows hit the file at window cadence, and the series is
/// never materialized. Drive it straight from an engine
/// (`engine.QueryToSink(query, &sink)`), a `WindowStream` drain loop, or a
/// `StreamingNetworkBuilder::EmitTo` feed. An I/O failure cancels the
/// producing query (OnWindow returns false) and surfaces in `status()`.
class SeriesCsvSink final : public WindowSink {
 public:
  /// Opens `path` and writes the header; a failed open surfaces through
  /// `status()` and aborts a bounded producer at OnBegin with the IoError.
  explicit SeriesCsvSink(const std::string& path);

  Status OnBegin(const SlidingQuery& query, int64_t num_series) override;
  bool OnWindow(int64_t window_index, std::vector<Edge> edges) override;
  void OnFinish(const Status& status) override;

  /// Ok only when every window was written and flushed: the first I/O
  /// failure, a failed final flush, or the producer's non-OK terminal
  /// status (the file is then a truncated prefix) land here.
  const Status& status() const { return status_; }

 private:
  std::ofstream out_;
  std::string path_;
  Status status_ = Status::Ok();
};

}  // namespace dangoron

#endif  // DANGORON_NETWORK_EXPORT_H_
