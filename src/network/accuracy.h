#ifndef DANGORON_NETWORK_ACCURACY_H_
#define DANGORON_NETWORK_ACCURACY_H_

#include <cstdint>
#include <span>

#include "common/status.h"
#include "engine/query.h"

namespace dangoron {

/// Edge-detection quality of one window against exact ground truth,
/// treating "edge" (correlation >= beta) as the positive class — the paper's
/// accuracy measure for approximate engines (Dangoron jump mode, ParCorr).
struct EdgeAccuracy {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t false_negatives = 0;
  /// Root-mean-square error of the values on true-positive edges.
  double value_rmse = 0.0;

  double Precision() const {
    const int64_t denom = true_positives + false_positives;
    return denom == 0 ? 1.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(denom);
  }
  double Recall() const {
    const int64_t denom = true_positives + false_negatives;
    return denom == 0 ? 1.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(denom);
  }
  double F1() const {
    const double p = Precision();
    const double r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Compares one window's edge list against ground truth (both sorted by
/// (i, j), as engines emit them).
EdgeAccuracy CompareWindowEdges(std::span<const Edge> truth,
                                std::span<const Edge> test);

/// Accuracy aggregated over every window of a query result.
struct SeriesAccuracy {
  EdgeAccuracy total;           ///< micro-aggregated counts over all windows
  double mean_f1 = 1.0;         ///< macro mean of per-window F1
  int64_t windows_compared = 0;
};

/// Compares two query results window by window; they must stem from the
/// same query geometry (same window count).
Result<SeriesAccuracy> CompareSeries(const CorrelationMatrixSeries& truth,
                                     const CorrelationMatrixSeries& test);

}  // namespace dangoron

#endif  // DANGORON_NETWORK_ACCURACY_H_
