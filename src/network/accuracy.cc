#include "network/accuracy.h"

#include <cmath>

namespace dangoron {

EdgeAccuracy CompareWindowEdges(std::span<const Edge> truth,
                                std::span<const Edge> test) {
  EdgeAccuracy accuracy;
  size_t x = 0;
  size_t y = 0;
  double squared_error = 0.0;
  auto less = [](const Edge& a, const Edge& b) {
    return a.i != b.i ? a.i < b.i : a.j < b.j;
  };
  while (x < truth.size() && y < test.size()) {
    if (less(truth[x], test[y])) {
      ++accuracy.false_negatives;
      ++x;
    } else if (less(test[y], truth[x])) {
      ++accuracy.false_positives;
      ++y;
    } else {
      ++accuracy.true_positives;
      const double diff = truth[x].value - test[y].value;
      squared_error += diff * diff;
      ++x;
      ++y;
    }
  }
  accuracy.false_negatives += static_cast<int64_t>(truth.size() - x);
  accuracy.false_positives += static_cast<int64_t>(test.size() - y);
  accuracy.value_rmse =
      accuracy.true_positives > 0
          ? std::sqrt(squared_error /
                      static_cast<double>(accuracy.true_positives))
          : 0.0;
  return accuracy;
}

Result<SeriesAccuracy> CompareSeries(const CorrelationMatrixSeries& truth,
                                     const CorrelationMatrixSeries& test) {
  if (truth.num_windows() != test.num_windows()) {
    return Status::InvalidArgument("CompareSeries: window counts differ (",
                                   truth.num_windows(), " vs ",
                                   test.num_windows(), ")");
  }
  SeriesAccuracy aggregate;
  double f1_sum = 0.0;
  double rmse_weighted = 0.0;
  for (int64_t k = 0; k < truth.num_windows(); ++k) {
    const EdgeAccuracy window =
        CompareWindowEdges(truth.WindowEdges(k), test.WindowEdges(k));
    aggregate.total.true_positives += window.true_positives;
    aggregate.total.false_positives += window.false_positives;
    aggregate.total.false_negatives += window.false_negatives;
    rmse_weighted += window.value_rmse * window.value_rmse *
                     static_cast<double>(window.true_positives);
    f1_sum += window.F1();
    ++aggregate.windows_compared;
  }
  aggregate.total.value_rmse =
      aggregate.total.true_positives > 0
          ? std::sqrt(rmse_weighted /
                      static_cast<double>(aggregate.total.true_positives))
          : 0.0;
  aggregate.mean_f1 =
      aggregate.windows_compared > 0
          ? f1_sum / static_cast<double>(aggregate.windows_compared)
          : 1.0;
  return aggregate;
}

}  // namespace dangoron
