#include "network/export.h"

#include <cmath>
#include <fstream>

#include "common/strings.h"

namespace dangoron {

namespace {

std::string NodeName(const std::vector<std::string>& names, int64_t v) {
  if (static_cast<size_t>(v) < names.size() && !names[static_cast<size_t>(v)].empty()) {
    return names[static_cast<size_t>(v)];
  }
  return std::to_string(v);
}

}  // namespace

Status WriteEdgeList(const NetworkSnapshot& network,
                     const std::vector<std::string>& names,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open edge list for writing: ", path);
  }
  for (const Edge& edge : network.edges()) {
    out << NodeName(names, edge.i) << '\t' << NodeName(names, edge.j) << '\t'
        << StrFormat("%.6f", edge.value) << '\n';
  }
  if (!out) {
    return Status::IoError("error writing edge list: ", path);
  }
  return Status::Ok();
}

Status WriteGraphviz(const NetworkSnapshot& network,
                     const std::vector<std::string>& names,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open DOT file for writing: ", path);
  }
  out << "graph correlation_network {\n";
  out << "  layout=neato;\n  node [shape=circle, fontsize=10];\n";
  for (int64_t v = 0; v < network.num_nodes(); ++v) {
    out << "  \"" << NodeName(names, v) << "\";\n";
  }
  for (const Edge& edge : network.edges()) {
    out << "  \"" << NodeName(names, edge.i) << "\" -- \""
        << NodeName(names, edge.j) << "\" [weight="
        << StrFormat("%.4f", edge.value)
        << ", penwidth=" << StrFormat("%.2f", 0.5 + 3.0 * std::fabs(edge.value))
        << "];\n";
  }
  out << "}\n";
  if (!out) {
    return Status::IoError("error writing DOT file: ", path);
  }
  return Status::Ok();
}

Status WriteSeriesCsv(const CorrelationMatrixSeries& series,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open series CSV for writing: ", path);
  }
  out << "window,i,j,correlation\n";
  for (int64_t k = 0; k < series.num_windows(); ++k) {
    for (const Edge& edge : series.WindowEdges(k)) {
      out << k << ',' << edge.i << ',' << edge.j << ','
          << StrFormat("%.6f", edge.value) << '\n';
    }
  }
  if (!out) {
    return Status::IoError("error writing series CSV: ", path);
  }
  return Status::Ok();
}

}  // namespace dangoron
