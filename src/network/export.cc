#include "network/export.h"

#include <cmath>
#include <fstream>

#include "common/strings.h"

namespace dangoron {

namespace {

std::string NodeName(const std::vector<std::string>& names, int64_t v) {
  if (static_cast<size_t>(v) < names.size() && !names[static_cast<size_t>(v)].empty()) {
    return names[static_cast<size_t>(v)];
  }
  return std::to_string(v);
}

// The one row writer behind both CSV export paths (materialized and sink).
void WriteCsvRows(std::ofstream& out, int64_t window_index,
                  std::span<const Edge> edges) {
  for (const Edge& edge : edges) {
    out << window_index << ',' << edge.i << ',' << edge.j << ','
        << StrFormat("%.6f", edge.value) << '\n';
  }
}

}  // namespace

Status WriteEdgeList(const NetworkSnapshot& network,
                     const std::vector<std::string>& names,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open edge list for writing: ", path);
  }
  for (const Edge& edge : network.edges()) {
    out << NodeName(names, edge.i) << '\t' << NodeName(names, edge.j) << '\t'
        << StrFormat("%.6f", edge.value) << '\n';
  }
  if (!out) {
    return Status::IoError("error writing edge list: ", path);
  }
  return Status::Ok();
}

Status WriteGraphviz(const NetworkSnapshot& network,
                     const std::vector<std::string>& names,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open DOT file for writing: ", path);
  }
  out << "graph correlation_network {\n";
  out << "  layout=neato;\n  node [shape=circle, fontsize=10];\n";
  for (int64_t v = 0; v < network.num_nodes(); ++v) {
    out << "  \"" << NodeName(names, v) << "\";\n";
  }
  for (const Edge& edge : network.edges()) {
    out << "  \"" << NodeName(names, edge.i) << "\" -- \""
        << NodeName(names, edge.j) << "\" [weight="
        << StrFormat("%.4f", edge.value)
        << ", penwidth=" << StrFormat("%.2f", 0.5 + 3.0 * std::fabs(edge.value))
        << "];\n";
  }
  out << "}\n";
  if (!out) {
    return Status::IoError("error writing DOT file: ", path);
  }
  return Status::Ok();
}

Status WriteSeriesCsv(const CorrelationMatrixSeries& series,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open series CSV for writing: ", path);
  }
  out << "window,i,j,correlation\n";
  for (int64_t k = 0; k < series.num_windows(); ++k) {
    WriteCsvRows(out, k, series.WindowEdges(k));
  }
  if (!out) {
    return Status::IoError("error writing series CSV: ", path);
  }
  return Status::Ok();
}

SeriesCsvSink::SeriesCsvSink(const std::string& path)
    : out_(path), path_(path) {
  if (!out_) {
    status_ = Status::IoError("cannot open series CSV for writing: ", path_);
    return;
  }
  out_ << "window,i,j,correlation\n";
}

Status SeriesCsvSink::OnBegin(const SlidingQuery& query, int64_t num_series) {
  (void)query;
  (void)num_series;
  // A broken sink aborts the bounded producer with the root cause (the
  // IoError from the failed open), not a generic mid-stream cancellation.
  return status_;
}

bool SeriesCsvSink::OnWindow(int64_t window_index, std::vector<Edge> edges) {
  if (!status_.ok()) {
    return false;  // already failed: cancel the producer
  }
  WriteCsvRows(out_, window_index, edges);
  if (!out_) {
    status_ = Status::IoError("error writing series CSV: ", path_);
    return false;
  }
  return true;
}

void SeriesCsvSink::OnFinish(const Status& status) {
  if (!status_.ok()) {
    return;
  }
  if (!status.ok()) {
    // The producer failed or was cancelled mid-query: the file is a
    // truncated prefix, and status() must say so, not report success.
    status_ = status;
    return;
  }
  out_.flush();
  if (!out_) {
    status_ = Status::IoError("error flushing series CSV: ", path_);
  }
}

}  // namespace dangoron
