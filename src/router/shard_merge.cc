#include "router/shard_merge.h"

#include <algorithm>
#include <utility>

namespace dangoron {

namespace {

/// Compat shim for the range-free constructor: slice i gets the unit range
/// [i, i+1), so "covered == num_pairs" degenerates to "all K delivered".
std::vector<ShardSlice> UnitSlices(
    std::vector<std::unique_ptr<ShardWindowSource>> sources) {
  std::vector<ShardSlice> slices;
  slices.reserve(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    ShardSlice slice;
    slice.source = std::move(sources[i]);
    slice.pair_begin = static_cast<int64_t>(i);
    slice.pair_end = static_cast<int64_t>(i) + 1;
    slices.push_back(std::move(slice));
  }
  return slices;
}

ShardMergeOptions WithoutFailover(ShardMergeOptions options) {
  options.failover = nullptr;
  options.max_failovers = 0;
  return options;
}

int64_t MaxPairEnd(const std::vector<ShardSlice>& slices) {
  int64_t end = 0;
  for (const ShardSlice& slice : slices) {
    end = std::max(end, slice.pair_end);
  }
  return end;
}

}  // namespace

ShardMerge::ShardMerge(std::vector<ShardSlice> slices, int64_t num_pairs,
                       const ShardMergeOptions& options)
    : options_(options),
      num_pairs_(num_pairs >= 0 ? num_pairs : MaxPairEnd(slices)),
      downstream_(std::make_shared<WindowStreamState>(
          std::max<int64_t>(int64_t{1}, options.queue_capacity))) {
  slices_.reserve(slices.size());
  for (ShardSlice& in : slices) {
    auto slice = std::make_unique<Slice>();
    slice->source = std::move(in.source);
    slice->pair_begin = in.pair_begin;
    slice->pair_end = in.pair_end;
    slice->label = std::move(in.label);
    slice->shard_id = in.shard_id;
    slice->base_window = in.base_window;
    slice->next_window = in.base_window;
    slices_.push_back(std::move(slice));
  }
  active_readers_ = static_cast<int>(slices_.size());
  if (slices_.empty()) {
    // Degenerate but legal: an empty merge is an empty Ok stream.
    downstream_->Finish(Status::Ok(), StreamingSummary{});
    return;
  }
  // Under the lock: a reader that dies instantly appends replacement
  // threads to readers_ from its own thread, racing this loop otherwise.
  MutexLock lock(mutex_);
  readers_.reserve(slices_.size());
  for (size_t s = 0; s < slices_.size(); ++s) {
    readers_.emplace_back([this, s] { ReaderLoop(static_cast<int>(s)); });
  }
}

ShardMerge::ShardMerge(std::vector<std::unique_ptr<ShardWindowSource>> sources,
                       const ShardMergeOptions& options)
    : ShardMerge(UnitSlices(std::move(sources)), int64_t{-1},
                 WithoutFailover(options)) {}

ShardMerge::~ShardMerge() {
  Cancel();
  // Failover grows readers_ while we drain it; swap out batches until a
  // sweep finds it empty (cancelled_ stops new spawns, so this terminates).
  while (true) {
    std::vector<std::thread> batch;
    {
      MutexLock lock(mutex_);
      batch.swap(readers_);
    }
    if (batch.empty()) {
      break;
    }
    for (std::thread& reader : batch) {
      if (reader.joinable()) {
        reader.join();
      }
    }
  }
}

std::optional<StreamedWindow> ShardMerge::Next() {
  return downstream_->Next();
}

void ShardMerge::Cancel() {
  MutexLock lock(mutex_);
  if (cancelled_ || (active_readers_ == 0 && downstream_->finished())) {
    return;
  }
  cancelled_ = true;
  // Upstream cancels are best-effort pokes; each shard still finishes its
  // stream with a terminal status, which is what unblocks the readers.
  for (const auto& slice : slices_) {
    slice->source->Cancel();
  }
  downstream_->Cancel();
  progress_cv_.NotifyAll();
}

Status ShardMerge::status() const { return downstream_->status(); }

WireSummary ShardMerge::summary() const {
  WireSummary total;
  MutexLock lock(mutex_);
  // Per-slice terminal summaries are stable once the merge finished (every
  // reader joined its source's terminal status before exiting). Failed-over
  // slices still count: their windows were delivered and merged.
  for (const auto& slice : slices_) {
    const WireSummary s = slice->source->summary();
    total.windows_from_cache += s.windows_from_cache;
    total.windows_computed += s.windows_computed;
    total.windows_joined += s.windows_joined;
    total.cells_jumped += s.cells_jumped;
    total.jumps += s.jumps;
    if (s.tier_used == ServeTier::kApprox) {
      total.tier_used = ServeTier::kApprox;
    }
    if (s.degraded) {
      total.degraded = true;
    }
  }
  total.windows_delivered = windows_merged_;
  return total;
}

int64_t ShardMerge::failovers() const {
  MutexLock lock(mutex_);
  return failovers_used_;
}

int64_t ShardMerge::num_shards() const {
  MutexLock lock(mutex_);
  return static_cast<int64_t>(slices_.size());
}

Status ShardMerge::PrefixedStatus(int slice_index, const Status& status) const {
  const Slice& slice = *slices_[static_cast<size_t>(slice_index)];
  std::string prefix = "shard " + std::to_string(slice_index);
  if (!slice.label.empty()) {
    prefix += " (" + slice.label + ")";
  }
  return Status(status.code(), prefix + ": " + status.message());
}

bool ShardMerge::WindowCompleteLocked(const Pending& pending) const {
  return pending.covered == num_pairs_ &&
         (num_pairs_ > 0 || !pending.parts.empty());
}

void ShardMerge::MergeFailLocked(const Status& status) {
  if (failed_ || cancelled_) {
    return;  // first failure wins; a cancel in flight outranks everything
  }
  failed_ = true;
  fail_status_ = status;
  for (const auto& slice : slices_) {
    slice->source->Cancel();
  }
  // Unblock a consumer mid-Next and drop queued windows: a failed merge
  // must not dribble out a partial prefix as if it were the result.
  downstream_->Cancel();
  progress_cv_.NotifyAll();
}

void ShardMerge::HandleShardFailureLocked(int slice_index, const Status& cause,
                                          bool retryable) {
  if (cancelled_ || failed_) {
    return;
  }
  Slice* slice = slices_[static_cast<size_t>(slice_index)].get();
  const bool budget = options_.failover != nullptr &&
                      failovers_used_ < options_.max_failovers &&
                      std::chrono::steady_clock::now() < options_.deadline;
  if (!retryable || !budget) {
    MergeFailLocked(cause);
    return;
  }
  ++failovers_used_;
  slice->done = true;
  slice->failed_over = true;

  ShardFailover failover;
  failover.shard = slice_index;
  failover.shard_id = slice->shard_id;
  failover.label = slice->label;
  failover.pair_begin = slice->pair_begin;
  failover.pair_end = slice->pair_end;
  failover.resume_window = slice->next_window;
  failover.cause = cause;

  // The hook reconnects / re-plans with its own bounded backoff — seconds,
  // potentially. Other readers must keep draining meanwhile.
  mutex_.Unlock();
  Result<std::vector<ShardSlice>> replacements = options_.failover(failover);
  mutex_.Lock();

  if (cancelled_ || failed_) {
    // The merge died while the hook ran; don't leak live replacement
    // streams — cancel them and let their transports wind down unjoined
    // (no reader was ever spawned for them).
    if (replacements.ok()) {
      for (ShardSlice& s : *replacements) {
        if (s.source != nullptr) {
          s.source->Cancel();
        }
      }
    }
    return;
  }
  if (!replacements.ok()) {
    MergeFailLocked(Status(cause.code(),
                           cause.message() + " (failover failed: " +
                               replacements.status().message() + ")"));
    return;
  }
  int64_t covered = 0;
  for (const ShardSlice& s : *replacements) {
    covered += s.pair_end - s.pair_begin;
  }
  if (replacements->empty() || covered != failover.pair_end - failover.pair_begin) {
    MergeFailLocked(Status::Internal(
        "shard merge: failover for shard ", slice_index,
        " returned ranges covering ", covered, " pairs, expected ",
        failover.pair_end - failover.pair_begin));
    return;
  }
  const size_t first_new = slices_.size();
  for (ShardSlice& s : *replacements) {
    auto replacement = std::make_unique<Slice>();
    replacement->source = std::move(s.source);
    replacement->pair_begin = s.pair_begin;
    replacement->pair_end = s.pair_end;
    replacement->label = std::move(s.label);
    replacement->shard_id = s.shard_id;
    // The replacement's upstream query was re-anchored at the resume
    // window, so its stream counts locally from 0; the merge re-bases.
    replacement->base_window = failover.resume_window;
    replacement->next_window = failover.resume_window;
    slices_.push_back(std::move(replacement));
  }
  for (size_t s = first_new; s < slices_.size(); ++s) {
    ++active_readers_;
    readers_.emplace_back([this, s] { ReaderLoop(static_cast<int>(s)); });
  }
  progress_cv_.NotifyAll();
}

void ShardMerge::EmitReadyLocked() {
  while (!cancelled_ && !failed_) {
    auto it = pending_.begin();
    if (it == pending_.end() || it->first != next_emit_ ||
        !WindowCompleteLocked(it->second)) {
      break;
    }
    // Concatenate in ascending pair-range order — which is canonical
    // EdgeOrder, so the merged window needs no sort.
    StreamedWindow merged;
    merged.window_index = it->first;
    size_t total = 0;
    for (const auto& [begin, part] : it->second.parts) {
      total += part == nullptr ? 0 : part->size();
    }
    auto edges = std::make_shared<std::vector<Edge>>();
    edges->reserve(total);
    for (const auto& [begin, part] : it->second.parts) {
      if (part != nullptr) {
        edges->insert(edges->end(), part->begin(), part->end());
      }
    }
    merged.edges = std::move(edges);
    pending_.erase(it);
    ++next_emit_;
    ++windows_merged_;
    progress_cv_.NotifyAll();

    mutex_.Unlock();
    const bool pushed = downstream_->Push(std::move(merged));
    mutex_.Lock();
    if (!pushed) {
      // The consumer cancelled the merged stream while we were blocked on
      // its queue; fan the cancel out to the shards.
      if (!cancelled_) {
        cancelled_ = true;
        for (const auto& slice : slices_) {
          slice->source->Cancel();
        }
        progress_cv_.NotifyAll();
      }
      break;
    }
  }
}

void ShardMerge::FinishLocked() {
  Status terminal = Status::Ok();
  if (failed_) {
    terminal = fail_status_;
  } else if (cancelled_) {
    terminal = Status::Cancelled("shard merge cancelled");
  } else if (!pending_.empty()) {
    terminal = Status::Internal(
        "shard merge: shards disagreed on the window count — ",
        pending_.size(), " windows never completed (first stuck index ",
        pending_.begin()->first, ")");
  }
  // The downstream summary mirrors the aggregate; consumers read the full
  // per-shard rollup via ShardMerge::summary().
  StreamingSummary summary;
  summary.windows_computed = windows_merged_;
  downstream_->Finish(terminal, summary);
}

void ShardMerge::ReaderLoop(int slice_index) {
  // Explicit Lock/Unlock: the loop holds mutex_ at its head and at every
  // break, dropping it only around the blocking source->Next() — a shape a
  // scoped guard cannot express. Thread-safety analysis checks the pairing.
  mutex_.Lock();
  Slice* slice = slices_[static_cast<size_t>(slice_index)].get();
  while (true) {
    mutex_.Unlock();
    Result<std::optional<StreamedWindow>> next = slice->source->Next();
    mutex_.Lock();

    if (!next.ok()) {
      // A transport/protocol failure: the shard process is gone or
      // babbling — always a failover candidate.
      HandleShardFailureLocked(slice_index,
                               PrefixedStatus(slice_index, next.status()),
                               /*retryable=*/true);
      break;
    }
    if (!next->has_value()) {
      const Status verdict = slice->source->result_status();
      if (!verdict.ok() && !cancelled_) {
        // Terminal Unavailable means the shard died under the query (e.g.
        // its process was killed between frames) — retryable. Any other
        // verdict (FailedPrecondition fingerprint drift, Internal, ...)
        // would recur on a replacement; fail fast.
        HandleShardFailureLocked(
            slice_index, PrefixedStatus(slice_index, verdict),
            /*retryable=*/verdict.code() == StatusCode::kUnavailable);
        break;
      }
      slice->done = true;
      slice->done_ok = verdict.ok();
      // Any window this slice never delivered can no longer complete.
      if (!failed_ && !cancelled_ && slice->done_ok && !pending_.empty() &&
          pending_.rbegin()->first >= slice->next_window) {
        MergeFailLocked(Status::Internal(
            "shard merge: shard ", slice_index, " finished after window ",
            slice->next_window, " while others delivered ahead of it"));
      }
      break;
    }
    if (cancelled_ || failed_) {
      // Upstream Cancel already asked the stream to finish; dropping its
      // remaining windows is the transport's job. Just exit.
      break;
    }

    StreamedWindow window = std::move(**next);
    const int64_t k = slice->base_window + window.window_index;
    if (k != slice->next_window) {
      MergeFailLocked(Status::Internal(
          "shard merge: shard ", slice_index, " delivered window ", k,
          " out of order (expected ", slice->next_window, ")"));
      break;
    }
    slice->next_window = k + 1;

    // A window a finished slice never reached can never complete (ranges
    // of failed-over slices live on through their replacements, so those
    // don't count).
    bool orphaned = false;
    for (const auto& other : slices_) {
      if (other->done_ok && other->next_window <= k) {
        orphaned = true;
        break;
      }
    }
    if (orphaned) {
      MergeFailLocked(Status::Internal(
          "shard merge: window ", k, " can never complete — a shard "
          "finished before delivering it"));
      break;
    }

    // Bounded skew: wait for the emission frontier before running further
    // ahead of the slowest slice.
    while (!cancelled_ && !failed_ &&
           k >= next_emit_ + options_.max_skew_windows) {
      progress_cv_.Wait(mutex_);
    }
    if (cancelled_ || failed_) {
      break;
    }

    Pending& slot = pending_[k];
    // emplace dedups by pair range: if a failover race redelivers a part
    // the dead shard already supplied, first delivery wins and the
    // duplicate is dropped — re-dispatch can never double-emit an edge.
    auto [part_it, inserted] =
        slot.parts.emplace(slice->pair_begin, std::move(window.edges));
    if (inserted) {
      slot.covered += slice->pair_end - slice->pair_begin;
    }
    if (WindowCompleteLocked(slot) && k == next_emit_ && !emitting_) {
      emitting_ = true;
      EmitReadyLocked();
      emitting_ = false;
      progress_cv_.NotifyAll();
    }
  }

  // Every break above exits with mutex_ held.
  if (--active_readers_ == 0) {
    // Late completions may have piled up behind an emitter that bailed on
    // cancel/failure; the terminal path never emits, it only settles.
    FinishLocked();
  }
  mutex_.Unlock();
}

}  // namespace dangoron
