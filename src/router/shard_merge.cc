#include "router/shard_merge.h"

#include <algorithm>
#include <utility>

namespace dangoron {

ShardMerge::ShardMerge(std::vector<std::unique_ptr<ShardWindowSource>> sources,
                       const ShardMergeOptions& options)
    : sources_(std::move(sources)),
      options_(options),
      downstream_(std::make_shared<WindowStreamState>(
          std::max<int64_t>(int64_t{1}, options.queue_capacity))),
      shard_done_(sources_.size(), false),
      watermark_(sources_.size(), 0) {
  active_readers_ = static_cast<int>(sources_.size());
  if (sources_.empty()) {
    // Degenerate but legal: an empty merge is an empty Ok stream.
    downstream_->Finish(Status::Ok(), StreamingSummary{});
    return;
  }
  readers_.reserve(sources_.size());
  for (size_t s = 0; s < sources_.size(); ++s) {
    readers_.emplace_back([this, s] { ReaderLoop(static_cast<int>(s)); });
  }
}

ShardMerge::~ShardMerge() {
  Cancel();
  for (std::thread& reader : readers_) {
    if (reader.joinable()) {
      reader.join();
    }
  }
}

std::optional<StreamedWindow> ShardMerge::Next() {
  return downstream_->Next();
}

void ShardMerge::Cancel() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (cancelled_ || (active_readers_ == 0 && downstream_->finished())) {
    return;
  }
  cancelled_ = true;
  // Upstream cancels are best-effort pokes; each shard still finishes its
  // stream with a terminal status, which is what unblocks the readers.
  for (const auto& source : sources_) {
    source->Cancel();
  }
  downstream_->Cancel();
  progress_cv_.notify_all();
}

Status ShardMerge::status() const { return downstream_->status(); }

WireSummary ShardMerge::summary() const {
  WireSummary total;
  // Per-shard terminal summaries are stable once the merge finished (every
  // reader joined its source's terminal status before exiting).
  for (const auto& source : sources_) {
    const WireSummary s = source->summary();
    total.windows_from_cache += s.windows_from_cache;
    total.windows_computed += s.windows_computed;
    total.windows_joined += s.windows_joined;
    total.cells_jumped += s.cells_jumped;
    total.jumps += s.jumps;
    if (s.tier_used == ServeTier::kApprox) {
      total.tier_used = ServeTier::kApprox;
    }
    if (s.degraded) {
      total.degraded = true;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  total.windows_delivered = windows_merged_;
  return total;
}

void ShardMerge::MergeFailLocked(const Status& status) {
  if (failed_ || cancelled_) {
    return;  // first failure wins; a cancel in flight outranks everything
  }
  failed_ = true;
  fail_status_ = status;
  for (const auto& source : sources_) {
    source->Cancel();
  }
  // Unblock a consumer mid-Next and drop queued windows: a failed merge
  // must not dribble out a partial prefix as if it were the result.
  downstream_->Cancel();
  progress_cv_.notify_all();
}

void ShardMerge::EmitReadyLocked(std::unique_lock<std::mutex>& lock) {
  while (!cancelled_ && !failed_) {
    auto it = pending_.begin();
    if (it == pending_.end() || it->first != next_emit_ ||
        it->second.delivered != static_cast<int>(sources_.size())) {
      break;
    }
    // Concatenate in shard order — ascending pair-id ranges, so the result
    // is already in canonical EdgeOrder.
    StreamedWindow merged;
    merged.window_index = it->first;
    size_t total = 0;
    for (const WindowEdges& part : it->second.parts) {
      total += part == nullptr ? 0 : part->size();
    }
    auto edges = std::make_shared<std::vector<Edge>>();
    edges->reserve(total);
    for (const WindowEdges& part : it->second.parts) {
      if (part != nullptr) {
        edges->insert(edges->end(), part->begin(), part->end());
      }
    }
    merged.edges = std::move(edges);
    pending_.erase(it);
    ++next_emit_;
    ++windows_merged_;
    progress_cv_.notify_all();

    lock.unlock();
    const bool pushed = downstream_->Push(std::move(merged));
    lock.lock();
    if (!pushed) {
      // The consumer cancelled the merged stream while we were blocked on
      // its queue; fan the cancel out to the shards.
      if (!cancelled_) {
        cancelled_ = true;
        for (const auto& source : sources_) {
          source->Cancel();
        }
        progress_cv_.notify_all();
      }
      break;
    }
  }
}

void ShardMerge::FinishLocked() {
  Status terminal = Status::Ok();
  if (failed_) {
    terminal = fail_status_;
  } else if (cancelled_) {
    terminal = Status::Cancelled("shard merge cancelled");
  } else if (!pending_.empty()) {
    terminal = Status::Internal(
        "shard merge: shards disagreed on the window count — ",
        pending_.size(), " windows never completed (first stuck index ",
        pending_.begin()->first, ")");
  }
  // The downstream summary mirrors the aggregate; consumers read the full
  // per-shard rollup via ShardMerge::summary().
  StreamingSummary summary;
  summary.windows_computed = windows_merged_;
  downstream_->Finish(terminal, summary);
}

void ShardMerge::ReaderLoop(int shard) {
  ShardWindowSource* source = sources_[static_cast<size_t>(shard)].get();
  while (true) {
    Result<std::optional<StreamedWindow>> next = source->Next();

    std::unique_lock<std::mutex> lock(mutex_);
    if (!next.ok()) {
      MergeFailLocked(Status(next.status().code(),
                             "shard " + std::to_string(shard) + ": " +
                                 next.status().message()));
      break;
    }
    if (!next->has_value()) {
      const Status verdict = source->result_status();
      if (!verdict.ok() && !cancelled_) {
        MergeFailLocked(Status(verdict.code(),
                               "shard " + std::to_string(shard) + ": " +
                                   verdict.message()));
        break;
      }
      shard_done_[static_cast<size_t>(shard)] = true;
      // Any window this shard never delivered can no longer complete.
      if (!failed_ && !cancelled_ && !pending_.empty() &&
          pending_.rbegin()->first >=
              watermark_[static_cast<size_t>(shard)]) {
        MergeFailLocked(Status::Internal(
            "shard merge: shard ", shard, " finished after ",
            watermark_[static_cast<size_t>(shard)],
            " windows while others delivered ahead of it"));
      }
      break;
    }
    if (cancelled_ || failed_) {
      // Keep draining a terminating stream? No — upstream Cancel already
      // asked it to finish; dropping the handle's remaining windows is the
      // transport's job. Just exit.
      break;
    }

    StreamedWindow window = std::move(**next);
    const int64_t k = window.window_index;
    if (k != watermark_[static_cast<size_t>(shard)]) {
      MergeFailLocked(Status::Internal(
          "shard merge: shard ", shard, " delivered window ", k,
          " out of order (expected ",
          watermark_[static_cast<size_t>(shard)], ")"));
      break;
    }
    watermark_[static_cast<size_t>(shard)] = k + 1;

    // A window a finished shard never reached can never complete.
    bool orphaned = false;
    for (size_t t = 0; t < sources_.size(); ++t) {
      if (shard_done_[t] && watermark_[t] <= k) {
        orphaned = true;
        break;
      }
    }
    if (orphaned) {
      MergeFailLocked(Status::Internal(
          "shard merge: window ", k, " can never complete — a shard "
          "finished before delivering it"));
      break;
    }

    // Bounded skew: wait for the emission frontier before running further
    // ahead of the slowest shard.
    progress_cv_.wait(lock, [&] {
      return cancelled_ || failed_ ||
             k < next_emit_ + options_.max_skew_windows;
    });
    if (cancelled_ || failed_) {
      break;
    }

    Pending& slot = pending_[k];
    if (slot.parts.empty()) {
      slot.parts.resize(sources_.size());
    }
    slot.parts[static_cast<size_t>(shard)] = std::move(window.edges);
    ++slot.delivered;
    if (slot.delivered == static_cast<int>(sources_.size()) &&
        k == next_emit_ && !emitting_) {
      emitting_ = true;
      EmitReadyLocked(lock);
      emitting_ = false;
      progress_cv_.notify_all();
    }
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (--active_readers_ == 0) {
    // Late completions may have piled up behind an emitter that bailed on
    // cancel/failure; the terminal path never emits, it only settles.
    FinishLocked();
  }
}

}  // namespace dangoron
