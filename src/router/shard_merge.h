#ifndef DANGORON_ROUTER_SHARD_MERGE_H_
#define DANGORON_ROUTER_SHARD_MERGE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/window_stream.h"
#include "wire/wire_format.h"

namespace dangoron {

/// One shard's window stream as the merge consumes it — the seam between
/// the merge core and its transports. The production implementation wraps a
/// WireClient draining one shard's wire response (see ShardRouter); tests
/// drive synthetic sources with deterministic skew, errors, and delays.
///
/// Contract (the WindowStream/WireClient contract, restated):
/// - `Next` blocks for the shard's next window; indices arrive ascending
///   and consecutive from 0. nullopt means the shard stream is terminal —
///   read the shard's verdict from `result_status()`. An error Status is a
///   transport/protocol failure (the source is unusable).
/// - `Cancel` is thread-safe and best-effort: it asks the upstream to
///   finish early. After it, `Next` must still reach nullopt eventually
///   (cancelled upstreams finish with a terminal status) — that is what
///   lets the merge join its readers instead of abandoning them.
class ShardWindowSource {
 public:
  virtual ~ShardWindowSource() = default;

  virtual Result<std::optional<StreamedWindow>> Next() = 0;

  /// The shard's terminal verdict; meaningful once Next returned nullopt.
  virtual Status result_status() const = 0;

  /// The shard's terminal accounting; meaningful once Next returned
  /// nullopt.
  virtual WireSummary summary() const = 0;

  virtual void Cancel() = 0;
};

struct ShardMergeOptions {
  /// Bounded reorder window: how many windows a fast shard may run ahead of
  /// the slowest shard's emission frontier before its reader blocks. This
  /// bounds the merge's buffered memory at K * max_skew_windows partial
  /// windows under adversarial shard skew.
  int64_t max_skew_windows = 8;

  /// Capacity of the merged stream's bounded delivery queue (the same knob
  /// as StreamingSubmitOptions::queue_capacity).
  int64_t queue_capacity = kDefaultStreamQueueCapacity;
};

/// Merges K per-shard window streams — each carrying the same query
/// restricted to a disjoint pair-id range — back into one window-ordered
/// stream. Window k is emitted the moment all K shards have delivered their
/// slice of it: the parts are concatenated in shard order, which (shards
/// being ascending pair-id ranges) is exactly the canonical (i, j) edge
/// order, so no re-sort happens on the hot path.
///
/// Semantics preserved from the single-process stream:
/// - streaming: windows leave as they complete, never after the whole query;
/// - backpressure: the merged stream's queue is bounded; a slow consumer
///   blocks the emitter, the emitter's stall blocks readers at the skew
///   bound, and the upstream transports stall behind their sockets;
/// - cancel: `Cancel` (or destroying the merge) cancels all K upstreams and
///   the merged stream finishes with Cancelled;
/// - errors: the first shard failure (transport error or non-Ok terminal
///   status) cancels the surviving shards and fails the merged stream with
///   that status.
///
/// One reader thread per shard drains its source into a window-indexed
/// pending map (the reorder heap, std::map keeps it ordered); the reader
/// that completes the emission frontier becomes the emitter and pushes every
/// consecutively-complete window downstream.
class ShardMerge {
 public:
  ShardMerge(std::vector<std::unique_ptr<ShardWindowSource>> sources,
             const ShardMergeOptions& options = {});
  ~ShardMerge();

  ShardMerge(const ShardMerge&) = delete;
  ShardMerge& operator=(const ShardMerge&) = delete;

  /// Blocks for the next merged window; nullopt once the merge is terminal.
  std::optional<StreamedWindow> Next();

  /// Cancels the merged stream and all K upstream shard streams.
  void Cancel();

  /// Terminal status of the merged stream; meaningful once Next returned
  /// nullopt. Ok only when every shard finished Ok and delivered the same
  /// window count.
  Status status() const;

  /// Aggregated shard accounting (sums of per-shard counters; degraded /
  /// approx if any shard was); meaningful once Next returned nullopt.
  WireSummary summary() const;

  int64_t num_shards() const { return static_cast<int64_t>(sources_.size()); }

 private:
  struct Pending {
    int delivered = 0;
    std::vector<WindowEdges> parts;  // indexed by shard
  };

  void ReaderLoop(int shard);
  /// Fails the merge with `status` (first failure wins) and cancels every
  /// upstream. Caller holds mutex_.
  void MergeFailLocked(const Status& status);
  /// Emits every consecutively-complete window at the frontier. Caller
  /// holds `lock`; Push runs unlocked (downstream backpressure must not
  /// block other readers).
  void EmitReadyLocked(std::unique_lock<std::mutex>& lock);
  /// Called by the last reader to exit: settles the terminal status and
  /// finishes the downstream stream.
  void FinishLocked();

  const std::vector<std::unique_ptr<ShardWindowSource>> sources_;
  const ShardMergeOptions options_;
  const std::shared_ptr<WindowStreamState> downstream_;

  mutable std::mutex mutex_;
  std::condition_variable progress_cv_;
  std::map<int64_t, Pending> pending_;
  int64_t next_emit_ = 0;
  bool emitting_ = false;
  bool cancelled_ = false;
  bool failed_ = false;
  Status fail_status_;
  std::vector<bool> shard_done_;
  /// Per-shard delivered-window watermark: the next index shard s would
  /// deliver. Once s finished, any pending window at or above its watermark
  /// can never complete — the count-mismatch detector.
  std::vector<int64_t> watermark_;
  int active_readers_ = 0;
  int64_t windows_merged_ = 0;
  std::vector<std::thread> readers_;
};

}  // namespace dangoron

#endif  // DANGORON_ROUTER_SHARD_MERGE_H_
