#ifndef DANGORON_ROUTER_SHARD_MERGE_H_
#define DANGORON_ROUTER_SHARD_MERGE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "serve/window_stream.h"
#include "wire/wire_format.h"

namespace dangoron {

/// One shard's window stream as the merge consumes it — the seam between
/// the merge core and its transports. The production implementation wraps a
/// WireClient draining one shard's wire response (see ShardRouter); tests
/// drive synthetic sources with deterministic skew, errors, and delays.
///
/// Contract (the WindowStream/WireClient contract, restated):
/// - `Next` blocks for the shard's next window; indices arrive ascending
///   and consecutive from 0. nullopt means the shard stream is terminal —
///   read the shard's verdict from `result_status()`. An error Status is a
///   transport/protocol failure (the source is unusable).
/// - `Cancel` is thread-safe and best-effort: it asks the upstream to
///   finish early. After it, `Next` must still reach nullopt eventually
///   (cancelled upstreams finish with a terminal status) — that is what
///   lets the merge join its readers instead of abandoning them.
class ShardWindowSource {
 public:
  virtual ~ShardWindowSource() = default;

  virtual Result<std::optional<StreamedWindow>> Next() = 0;

  /// The shard's terminal verdict; meaningful once Next returned nullopt.
  virtual Status result_status() const = 0;

  /// The shard's terminal accounting; meaningful once Next returned
  /// nullopt.
  virtual WireSummary summary() const = 0;

  virtual void Cancel() = 0;
};

/// One shard stream plus the metadata the merge needs to place (and, on
/// failure, re-dispatch) its windows: the pair-id range the stream covers,
/// an operator-facing label (host:port or child pid) for error messages,
/// and the global index of the first window the stream will deliver
/// (non-zero only for failover replacements, whose upstream query was
/// re-anchored at the resume window and therefore counts windows from 0).
struct ShardSlice {
  std::unique_ptr<ShardWindowSource> source;
  int64_t pair_begin = 0;
  int64_t pair_end = 0;
  std::string label;
  /// Transport-defined identity (the router's shard index), opaque to the
  /// merge; echoed back in ShardFailover so the hook knows which backend
  /// died without parsing labels.
  int64_t shard_id = -1;
  int64_t base_window = 0;
};

/// What the merge hands its failover hook when a shard dies mid-query.
struct ShardFailover {
  /// Index of the dead slice (0..K-1 for the original shards; failover
  /// replacements get fresh indices past them).
  int shard = 0;
  /// The dead slice's transport-defined identity and label, echoed from
  /// ShardSlice.
  int64_t shard_id = -1;
  std::string label;
  /// The dead slice's pair range — the work that must be re-dispatched.
  int64_t pair_begin = 0;
  int64_t pair_end = 0;
  /// Global index of the first window the dead shard never delivered; the
  /// replacement streams resume here.
  int64_t resume_window = 0;
  /// The failure, already prefixed `shard N (label):` — what the merged
  /// stream fails with if the re-dispatch cannot be arranged.
  Status cause;
};

/// Re-dispatches a dead shard's remaining work: returns one or more
/// replacement slices that together cover [pair_begin, pair_end) and whose
/// streams deliver windows resume_window.. (locally indexed from 0 — the
/// merge applies base_window). Runs on the dead shard's reader thread with
/// no merge lock held; it may block (bounded reconnect backoff), and must
/// bound its own waits by the query deadline. An error return fails the
/// merge with the original cause.
using ShardFailoverFn =
    std::function<Result<std::vector<ShardSlice>>(const ShardFailover&)>;

struct ShardMergeOptions {
  /// Bounded reorder window: how many windows a fast shard may run ahead of
  /// the slowest shard's emission frontier before its reader blocks. This
  /// bounds the merge's buffered memory at K * max_skew_windows partial
  /// windows under adversarial shard skew.
  int64_t max_skew_windows = 8;

  /// Capacity of the merged stream's bounded delivery queue (the same knob
  /// as StreamingSubmitOptions::queue_capacity).
  int64_t queue_capacity = kDefaultStreamQueueCapacity;

  /// How many mid-stream shard deaths the merge may ride out by
  /// re-dispatching the dead shard's range (each death consumes one,
  /// however many replacement slices it fans out to). 0 — or a null
  /// `failover` — restores the PR 8 behavior: the first failure cancels
  /// the survivors and fails the merged stream.
  int max_failovers = 0;

  /// Hard stop for failover attempts: past this point a shard death fails
  /// the query with its original error instead of re-dispatching (the
  /// query would blow its deadline anyway). max() = no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  /// The re-dispatch hook (ShardRouter provides the production one:
  /// reconnect to the dead shard, else split across live shards).
  ShardFailoverFn failover;
};

/// Merges K per-shard window streams — each carrying the same query
/// restricted to a disjoint pair-id range — back into one window-ordered
/// stream. Window k is emitted the moment its delivered parts cover the
/// whole pair space: the parts are concatenated in ascending pair-range
/// order, which is exactly the canonical (i, j) edge order, so no re-sort
/// happens on the hot path.
///
/// Semantics preserved from the single-process stream:
/// - streaming: windows leave as they complete, never after the whole query;
/// - backpressure: the merged stream's queue is bounded; a slow consumer
///   blocks the emitter, the emitter's stall blocks readers at the skew
///   bound, and the upstream transports stall behind their sockets;
/// - cancel: `Cancel` (or destroying the merge) cancels all upstreams and
///   the merged stream finishes with Cancelled;
/// - errors: a shard failure (transport error or terminal Unavailable) is
///   first offered to the failover hook — the dead shard's undelivered
///   range re-dispatches and the delivered stream stays byte-identical —
///   and only when failovers are exhausted (or for non-retryable terminal
///   statuses, e.g. FailedPrecondition) does the failure cancel the
///   survivors and fail the merged stream, message prefixed
///   `shard N (label):`.
///
/// One reader thread per slice drains its source into a window-indexed
/// pending map (the reorder heap, std::map keeps it ordered); the reader
/// that completes the emission frontier becomes the emitter and pushes every
/// consecutively-complete window downstream. Duplicate parts (same window,
/// same pair range — possible only under failover races) are dropped, first
/// delivery wins, so re-dispatch can never double-emit an edge.
class ShardMerge {
 public:
  /// Range-aware construction: `slices` cover [0, num_pairs) disjointly.
  ShardMerge(std::vector<ShardSlice> slices, int64_t num_pairs,
             const ShardMergeOptions& options = {});

  /// Range-free construction for scripted/synthetic sources: slice i gets
  /// the unit range [i, i+1) and failover stays disabled.
  explicit ShardMerge(
      std::vector<std::unique_ptr<ShardWindowSource>> sources,
      const ShardMergeOptions& options = {});

  ~ShardMerge();

  ShardMerge(const ShardMerge&) = delete;
  ShardMerge& operator=(const ShardMerge&) = delete;

  /// Blocks for the next merged window; nullopt once the merge is terminal.
  std::optional<StreamedWindow> Next();

  /// Cancels the merged stream and all upstream shard streams.
  void Cancel();

  /// Terminal status of the merged stream; meaningful once Next returned
  /// nullopt. Ok only when every pair range delivered every window.
  Status status() const;

  /// Aggregated shard accounting (sums of per-slice counters; degraded /
  /// approx if any shard was); meaningful once Next returned nullopt.
  WireSummary summary() const;

  /// Mid-stream failovers performed so far (shard deaths ridden out).
  int64_t failovers() const;

  int64_t num_shards() const;

 private:
  struct Slice {
    std::unique_ptr<ShardWindowSource> source;
    int64_t pair_begin = 0;
    int64_t pair_end = 0;
    std::string label;
    /// Echoed into ShardFailover; opaque to the merge.
    int64_t shard_id = -1;
    /// Offset added to the slice's locally-indexed windows: replacements
    /// resume mid-query, so their upstream counts windows from 0 while the
    /// merge places them at base_window + local.
    int64_t base_window = 0;
    /// Global index of the next window this slice would deliver — starts
    /// at base_window, advances per delivery; the failover resume point.
    int64_t next_window = 0;
    bool done = false;
    /// Finished with an Ok verdict: its range stops arriving for good, the
    /// input to the count-mismatch detector.
    bool done_ok = false;
    /// Died and was re-dispatched: its range continues via replacement
    /// slices, so mismatch detection must not blame it.
    bool failed_over = false;
  };

  struct Pending {
    /// Parts keyed by their range's pair_begin — ascending map order is
    /// canonical (i, j) edge order, and the key dedups redelivery.
    std::map<int64_t, WindowEdges> parts;
    /// Sum of delivered parts' range widths; the window is complete when
    /// this covers the whole pair space.
    int64_t covered = 0;
  };

  bool WindowCompleteLocked(const Pending& pending) const REQUIRES(mutex_);
  void ReaderLoop(int slice_index);
  /// `shard N (label): message` — the operator-facing failure prefix.
  Status PrefixedStatus(int slice_index, const Status& status) const
      REQUIRES(mutex_);
  /// Shard death on slice `slice_index`: re-dispatch through the failover
  /// hook when the failure is retryable, a hook is configured, and budget
  /// remains — else fail the merge with `cause` (already prefixed). Drops
  /// mutex_ around the hook (which may block for seconds) and re-takes it.
  void HandleShardFailureLocked(int slice_index, const Status& cause,
                                bool retryable) REQUIRES(mutex_);
  /// Fails the merge with `status` (first failure wins) and cancels every
  /// upstream.
  void MergeFailLocked(const Status& status) REQUIRES(mutex_);
  /// Emits every consecutively-complete window at the frontier. Drops
  /// mutex_ around each Push and re-takes it (downstream backpressure must
  /// not block other readers).
  void EmitReadyLocked() REQUIRES(mutex_);
  /// Called by the last reader to exit: settles the terminal status and
  /// finishes the downstream stream.
  void FinishLocked() REQUIRES(mutex_);

  const ShardMergeOptions options_;
  const int64_t num_pairs_;
  const std::shared_ptr<WindowStreamState> downstream_;

  mutable Mutex mutex_;
  CondVar progress_cv_;
  /// Grows under mutex_ when a failover adds replacement slices; entries
  /// are pointer-stable (readers hold Slice*, never an index into a
  /// reallocated vector).
  std::vector<std::unique_ptr<Slice>> slices_ GUARDED_BY(mutex_);
  std::map<int64_t, Pending> pending_ GUARDED_BY(mutex_);
  int64_t next_emit_ GUARDED_BY(mutex_) = 0;
  bool emitting_ GUARDED_BY(mutex_) = false;
  bool cancelled_ GUARDED_BY(mutex_) = false;
  bool failed_ GUARDED_BY(mutex_) = false;
  Status fail_status_ GUARDED_BY(mutex_);
  int active_readers_ GUARDED_BY(mutex_) = 0;
  int64_t windows_merged_ GUARDED_BY(mutex_) = 0;
  int64_t failovers_used_ GUARDED_BY(mutex_) = 0;
  std::vector<std::thread> readers_ GUARDED_BY(mutex_);
};

}  // namespace dangoron

#endif  // DANGORON_ROUTER_SHARD_MERGE_H_
