#ifndef DANGORON_ROUTER_SHARD_ROUTER_H_
#define DANGORON_ROUTER_SHARD_ROUTER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "router/shard_merge.h"
#include "wire/client.h"
#include "wire/wire_format.h"

namespace dangoron {

/// One shard backend (a WireServer fronting a DangoronServer that holds the
/// full dataset — shards replicate data and split compute, see
/// src/router/README.md).
struct ShardEndpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

/// Splits [0, num_pairs) into at most `shards` contiguous ranges cut at
/// multiples of kSweepTilePairs, balanced to within one tile. Tile-aligned
/// cuts make every shard's sweep tiling coincide with the tiles it would
/// run as part of an unrestricted query, so the sharded decomposition is
/// the engine's own. Fewer ranges come back when there are fewer tiles
/// than shards; num_pairs == 0 yields one empty range.
std::vector<std::pair<int64_t, int64_t>> SplitPairRanges(int64_t num_pairs,
                                                         int shards);

/// The router's per-shard health verdict (see ShardRouter for the
/// transitions).
enum class ShardHealth : int8_t { kHealthy = 0, kSuspect = 1, kDown = 2 };

struct ShardRouterOptions {
  std::vector<ShardEndpoint> shards;

  /// Transport timeouts for each shard connection. Defaults bound connect
  /// and inter-frame read waits so one dead shard fails the merged query
  /// fast (Unavailable) instead of hanging it.
  WireClientOptions client{.connect_timeout_ms = 5000,
                           .read_timeout_ms = 60000};

  /// Merge knobs (skew bound, merged-queue capacity); the per-request
  /// queue_capacity from ServeOptions overrides the merge queue capacity,
  /// and the router installs its own failover hook / max_failovers /
  /// deadline (the fields here are ignored).
  ShardMergeOptions merge;

  /// Extra connect attempts per shard after the first fails — the PR 6
  /// retry shape: exponential backoff with deterministic-seeded jitter,
  /// clipped to the request deadline.
  int connect_retries = 2;

  /// Base backoff before the first reconnect attempt (doubles per retry,
  /// ×[0.5, 1.5) jitter).
  int64_t connect_backoff_ms = 10;

  /// Mid-stream shard deaths one query may ride out by re-dispatching the
  /// dead shard's remaining pair range (ShardMerge failover). 0 restores
  /// the PR 8 first-failure-fails-the-query behavior.
  int max_failovers = 2;

  /// Consecutive failures that take a shard healthy → down (one failure =
  /// suspect). Down shards are skipped at plan time without paying their
  /// connect timeout.
  int failure_threshold = 2;

  /// How long a down shard's circuit stays open. After expiry the next
  /// query admits the shard once as a probe (half-open); success closes
  /// the circuit, failure re-opens it for another window.
  int64_t breaker_open_ms = 2000;

  /// Test/bench seam: when set, shard `i`'s connection comes from this
  /// factory instead of ConnectTcp(shards[i]) — how in-process benchmarks
  /// and tests wire the router over socketpairs without binding ports.
  std::function<Result<std::unique_ptr<WireClient>>(int shard)>
      connect_override;
};

/// Scatter/gather front of K WireServer shards: one WireRequest fans out as
/// K requests over disjoint tile-aligned pair-id ranges, and the K window
/// streams merge back into one (ShardMerge). Connections are per-request (a
/// connection carries one request at a time; pooling is future work), but
/// the router itself is stateful across requests: it tracks per-shard
/// health and must outlive every merge it returns (the merge's failover
/// hook calls back into it).
///
/// Health machine (per shard, under one mutex):
/// - healthy → suspect on one failed connect/submit/stream;
/// - suspect → down after `failure_threshold` consecutive failures, opening
///   the circuit for `breaker_open_ms` — planning skips the shard without
///   paying its connect timeout;
/// - an expired circuit admits the shard once (half-open probe); any
///   success — or an external MarkShardUp (the supervisor's respawn+ready
///   signal) — snaps it back to healthy.
///
/// Failure semantics:
/// - at submit, an unreachable shard is retried (`connect_retries`, jittered
///   backoff clipped to the deadline), then dropped from the plan — the
///   query proceeds over the survivors with a wider pair range each (the
///   split is invisible in the merged bytes). Only when no shard admits a
///   connection does Submit fail with Unavailable naming the last failure;
/// - after submit, a shard that dies mid-stream (transport error or
///   terminal Unavailable) has its undelivered pair range re-dispatched —
///   reconnect to the same shard first, else split across live shards —
///   resuming from the first window it never delivered; the merged stream
///   is byte-identical to the unsharded run. After `max_failovers` (or at
///   the deadline, or for non-retryable errors like FailedPrecondition
///   fingerprint drift) the query fails with the original status prefixed
///   `shard N (host:port):`;
/// - Cancel / dropping the merge cancels all upstream streams;
/// - each shard request inherits the original request's options; deadlines
///   carry the *remaining* budget on re-dispatched legs.
class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterOptions options);

  /// Fans `request` out over the shards restricted to disjoint pair ranges
  /// of [0, num_pairs), returns the merged window-ordered stream. The
  /// caller supplies num_pairs = n*(n-1)/2 for the dataset's n series (the
  /// router holds no data; see RouterServer's dataset registry). The
  /// router must outlive the returned merge.
  Result<std::unique_ptr<ShardMerge>> Submit(const WireRequest& request,
                                             int64_t num_pairs);

  int64_t num_shards() const {
    return static_cast<int64_t>(options_.shards.size());
  }

  /// The health machine's current verdict for one shard (observability +
  /// tests).
  ShardHealth health(int shard) const;

  /// External signal that a shard is back (the serverd supervisor calls
  /// this after a respawned child passes its readiness probe): closes the
  /// circuit immediately instead of waiting out breaker_open_ms.
  void MarkShardUp(int shard);

 private:
  struct HealthState {
    ShardHealth state = ShardHealth::kHealthy;
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point open_until{};
  };

  Result<std::unique_ptr<WireClient>> Connect(int shard);

  /// Connect with the PR 6 retry shape: up to 1 + connect_retries
  /// attempts, exponential jittered backoff between them, every wait
  /// clipped to `deadline`. Fires the `router.connect` failpoint per
  /// attempt.
  Result<std::unique_ptr<WireClient>> ConnectWithRetry(
      int shard, std::chrono::steady_clock::time_point deadline);

  /// True when planning may route to the shard now; consumes the half-open
  /// probe slot when the circuit just expired.
  bool TryAdmit(int shard);
  void RecordSuccess(int shard);
  void RecordFailure(int shard);

  /// Label for error messages: "host:port", or "override" under
  /// connect_override with no endpoint list.
  std::string LabelFor(int shard) const;

  /// The merge's re-dispatch hook for one query: reconnect-first, else
  /// split the dead range across admittable survivors. `base` is the
  /// original request; `deadline` the absolute budget.
  ShardFailoverFn MakeFailover(
      WireRequest base, int64_t num_pairs,
      std::chrono::steady_clock::time_point deadline);

  const ShardRouterOptions options_;

  mutable Mutex health_mutex_;
  std::vector<HealthState> health_ GUARDED_BY(health_mutex_);
};

}  // namespace dangoron

#endif  // DANGORON_ROUTER_SHARD_ROUTER_H_
