#ifndef DANGORON_ROUTER_SHARD_ROUTER_H_
#define DANGORON_ROUTER_SHARD_ROUTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "router/shard_merge.h"
#include "wire/client.h"
#include "wire/wire_format.h"

namespace dangoron {

/// One shard backend (a WireServer fronting a DangoronServer that holds the
/// full dataset — shards replicate data and split compute, see
/// src/router/README.md).
struct ShardEndpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

/// Splits [0, num_pairs) into at most `shards` contiguous ranges cut at
/// multiples of kSweepTilePairs, balanced to within one tile. Tile-aligned
/// cuts make every shard's sweep tiling coincide with the tiles it would
/// run as part of an unrestricted query, so the sharded decomposition is
/// the engine's own. Fewer ranges come back when there are fewer tiles
/// than shards; num_pairs == 0 yields one empty range.
std::vector<std::pair<int64_t, int64_t>> SplitPairRanges(int64_t num_pairs,
                                                         int shards);

struct ShardRouterOptions {
  std::vector<ShardEndpoint> shards;

  /// Transport timeouts for each shard connection. Defaults bound connect
  /// and inter-frame read waits so one dead shard fails the merged query
  /// fast (Unavailable) instead of hanging it.
  WireClientOptions client{.connect_timeout_ms = 5000,
                           .read_timeout_ms = 60000};

  /// Merge knobs (skew bound, merged-queue capacity); the per-request
  /// queue_capacity from ServeOptions overrides the merge queue capacity.
  ShardMergeOptions merge;

  /// Test/bench seam: when set, shard `i`'s connection comes from this
  /// factory instead of ConnectTcp(shards[i]) — how in-process benchmarks
  /// and tests wire the router over socketpairs without binding ports.
  std::function<Result<std::unique_ptr<WireClient>>(int shard)>
      connect_override;
};

/// Scatter/gather front of K WireServer shards: one WireRequest fans out as
/// K requests over disjoint tile-aligned pair-id ranges, and the K window
/// streams merge back into one (ShardMerge). Stateless across requests —
/// every Submit opens fresh shard connections (a connection carries one
/// request at a time; pooling is future work).
///
/// Failure semantics:
/// - a shard that cannot be reached or refuses the request fails the
///   submit with Unavailable naming the shard;
/// - after submit, the first shard error (transport or terminal status —
///   e.g. FailedPrecondition from an expected_fingerprint mismatch) cancels
///   the surviving shards and fails the merged stream with that status;
/// - Cancel / dropping the merge cancels all K upstream streams;
/// - each shard request inherits the original request's deadline and
///   options verbatim.
class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterOptions options)
      : options_(std::move(options)) {}

  /// Fans `request` out over the shards restricted to disjoint pair ranges
  /// of [0, num_pairs), returns the merged window-ordered stream. The
  /// caller supplies num_pairs = n*(n-1)/2 for the dataset's n series (the
  /// router holds no data; see RouterServer's dataset registry).
  Result<std::unique_ptr<ShardMerge>> Submit(const WireRequest& request,
                                             int64_t num_pairs);

  int64_t num_shards() const {
    return static_cast<int64_t>(options_.shards.size());
  }

 private:
  Result<std::unique_ptr<WireClient>> Connect(int shard);

  const ShardRouterOptions options_;
};

}  // namespace dangoron

#endif  // DANGORON_ROUTER_SHARD_ROUTER_H_
