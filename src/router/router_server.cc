#include "router/router_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace dangoron {

namespace {

Status Errno(const char* what) {
  return Status::IoError("router server: ", what, "(): ",
                         std::string(std::strerror(errno)));
}

}  // namespace

RouterServer::RouterServer(ShardRouter* router,
                           const RouterServerOptions& options)
    : router_(router), options_(options) {}

RouterServer::~RouterServer() { Stop(); }

void RouterServer::RegisterDataset(const std::string& name,
                                   int64_t num_series, uint64_t fingerprint) {
  MutexLock lock(mutex_);
  datasets_[name] =
      DatasetInfo{num_series * (num_series - 1) / 2, fingerprint};
}

Status RouterServer::Start() {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("router server: already started");
  }
  if (options_.port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      running_ = false;
      return Errno("socket");
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
        1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      running_ = false;
      return Status::InvalidArgument("router server: bad bind address '",
                                     options_.bind_address, "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      Status status = Errno("bind");
      ::close(listen_fd_);
      listen_fd_ = -1;
      running_ = false;
      return status;
    }
    if (::listen(listen_fd_, 128) != 0) {
      Status status = Errno("listen");
      ::close(listen_fd_);
      listen_fd_ = -1;
      running_ = false;
      return status;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port_ = ntohs(bound.sin_port);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }
  return Status::Ok();
}

Status RouterServer::AddConnection(int fd) {
  if (!running_.load()) {
    ::close(fd);
    return Status::FailedPrecondition("router server: not running");
  }
  MutexLock lock(mutex_);
  ++stats_.connections_adopted;
  ++stats_.connections_active;
  open_fds_.push_back(fd);
  connection_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  return Status::Ok();
}

void RouterServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Connection threads blocked in poll/recv wake on shutdown and exit on
    // the dead socket; they close their own fd.
    MutexLock lock(mutex_);
    for (int fd : open_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  std::vector<std::thread> threads;
  {
    MutexLock lock(mutex_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) {
      t.join();
    }
  }
}

RouterServerStats RouterServer::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void RouterServer::AcceptLoop() {
  while (running_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 200);
    if (rc <= 0) {
      continue;  // timeout (re-check running_) or EINTR
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    MutexLock lock(mutex_);
    ++stats_.connections_accepted;
    if (stats_.connections_active >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ++stats_.connections_active;
    open_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

bool RouterServer::WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool RouterServer::SendStatus(int fd, const Status& status,
                              const WireSummary& summary) {
  std::string frame;
  EncodeStatusFrame(status, summary, &frame);
  return WriteAll(fd, frame);
}

void RouterServer::HandleConnection(int fd) {
  FrameReader reader(/*expect_preamble=*/true);
  uint8_t chunk[64 * 1024];
  bool alive = true;
  while (alive && running_.load()) {
    Frame frame;
    bool have = false;
    if (Status decoded = reader.Next(&frame, &have); !decoded.ok()) {
      MutexLock lock(mutex_);
      ++stats_.protocol_errors;
      break;
    }
    if (have) {
      switch (frame.type) {
        case FrameType::kRequest: {
          WireRequest request;
          if (Status decoded = DecodeRequestPayload(frame.payload, &request);
              !decoded.ok()) {
            MutexLock lock(mutex_);
            ++stats_.protocol_errors;
            alive = false;
            break;
          }
          {
            MutexLock lock(mutex_);
            ++stats_.requests;
          }
          alive = ServeRequest(fd, &reader, request);
          break;
        }
        case FrameType::kCancel:
          // A cancel racing the terminal status of the request it aimed
          // at; nothing in flight anymore, so it is a no-op.
          {
            MutexLock lock(mutex_);
            ++stats_.cancel_frames;
          }
          break;
        default: {
          MutexLock lock(mutex_);
          ++stats_.protocol_errors;
          alive = false;
          break;
        }
      }
      continue;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 200);
    if (rc == 0 || (rc < 0 && errno == EINTR)) {
      continue;  // timeout: re-check running_
    }
    if (rc < 0) {
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      break;  // peer closed between requests — a clean goodbye
    }
    reader.Feed(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  MutexLock lock(mutex_);
  --stats_.connections_active;
  open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                  open_fds_.end());
}

bool RouterServer::ServeRequest(int fd, FrameReader* reader,
                                const WireRequest& request) {
  DatasetInfo info;
  bool known = false;
  {
    MutexLock lock(mutex_);
    auto it = datasets_.find(request.dataset);
    if (it != datasets_.end()) {
      info = it->second;
      known = true;
    }
  }
  if (!known) {
    // Unknown name: terminal NotFound, connection stays usable — the same
    // request-scoped failure semantics as a shard server.
    return SendStatus(fd,
                      Status::NotFound("router: unknown dataset '",
                                       request.dataset, "'"),
                      WireSummary{});
  }

  WireRequest routed = request;
  if (routed.expected_fingerprint == 0) {
    // Pin the registered fingerprint so every shard verifies content even
    // when the client did not ask — drift on any shard must fail loudly,
    // never return a silently partial merge.
    routed.expected_fingerprint = info.fingerprint;
  }

  Result<std::unique_ptr<ShardMerge>> submitted =
      router_->Submit(routed, info.num_pairs);
  if (!submitted.ok()) {
    {
      MutexLock lock(mutex_);
      ++stats_.shard_failures;
    }
    return SendStatus(fd, submitted.status(), WireSummary{});
  }
  std::unique_ptr<ShardMerge> merge = std::move(*submitted);

  // Watcher: while the relay below blocks on merge->Next() / send(), this
  // thread is the only reader of the socket, so a cancel frame or a
  // disconnect reaches the shards immediately. The relay joins it before
  // touching the FrameReader again.
  std::atomic<bool> watcher_stop{false};
  std::atomic<bool> conn_dead{false};
  std::thread watcher([&] {
    uint8_t wchunk[4096];
    while (!watcher_stop.load()) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN | POLLRDHUP;
      const int rc = ::poll(&pfd, 1, 50);
      if (rc <= 0) {
        continue;
      }
      const ssize_t n = ::recv(fd, wchunk, sizeof(wchunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) {
          continue;
        }
        conn_dead.store(true);
        merge->Cancel();
        MutexLock lock(mutex_);
        ++stats_.disconnect_cancels;
        return;
      }
      reader->Feed(wchunk, static_cast<size_t>(n));
      while (true) {
        Frame frame;
        bool have = false;
        if (Status decoded = reader->Next(&frame, &have); !decoded.ok()) {
          conn_dead.store(true);
          merge->Cancel();
          MutexLock lock(mutex_);
          ++stats_.protocol_errors;
          return;
        }
        if (!have) {
          break;
        }
        if (frame.type == FrameType::kCancel) {
          {
            MutexLock lock(mutex_);
            ++stats_.cancel_frames;
          }
          merge->Cancel();
        } else {
          // Pipelining a second request before the terminal status is a
          // protocol violation, same as on a shard server.
          conn_dead.store(true);
          merge->Cancel();
          MutexLock lock(mutex_);
          ++stats_.protocol_errors;
          return;
        }
      }
    }
  });

  Status relay_status = Status::Ok();
  int64_t windows_sent = 0;
  bool write_ok = true;
  std::string frame;
  while (std::optional<StreamedWindow> window = merge->Next()) {
    frame.clear();
    EncodeWindowFrame(window->window_index, *window->edges, &frame);
    if (frame.size() >
        kMaxFramePayload + static_cast<uint64_t>(kFrameHeaderBytes)) {
      // Mirrors WireServer: a window too dense to frame aborts the stream
      // with the budget overflow instead of an unparseable frame.
      merge->Cancel();
      while (merge->Next()) {
      }
      relay_status = Status::ResourceExhausted(
          "router: merged window ", window->window_index, " encodes to ",
          frame.size() - kFrameHeaderBytes, " bytes, past the frame cap of ",
          kMaxFramePayload);
      break;
    }
    if (!WriteAll(fd, frame)) {
      merge->Cancel();
      while (merge->Next()) {
      }
      write_ok = false;
      break;
    }
    ++windows_sent;
  }

  watcher_stop.store(true);
  watcher.join();

  if (const int64_t failovers = merge->failovers(); failovers > 0) {
    MutexLock lock(mutex_);
    stats_.failovers += failovers;
  }

  if (conn_dead.load() || !write_ok) {
    return false;
  }

  Status terminal =
      relay_status.ok() ? merge->status() : relay_status;
  WireSummary summary = merge->summary();
  summary.windows_delivered = windows_sent;
  if (!terminal.ok() && terminal.code() != StatusCode::kCancelled) {
    MutexLock lock(mutex_);
    ++stats_.shard_failures;
  }
  return SendStatus(fd, terminal, summary);
}

}  // namespace dangoron
