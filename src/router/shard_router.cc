#include "router/shard_router.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/failpoint.h"
#include "common/rng.h"
#include "corr/sweep_kernel.h"

namespace dangoron {

namespace {

/// ShardWindowSource over one WireClient draining one shard's response.
class WireClientSource final : public ShardWindowSource {
 public:
  explicit WireClientSource(std::unique_ptr<WireClient> client)
      : client_(std::move(client)) {}

  Result<std::optional<StreamedWindow>> Next() override {
    // Chaos seam: `router.stream_read=error:...` makes a healthy shard
    // look like it died between frames — the merge's failover trigger.
    if (Status injected = DANGORON_FAILPOINT_STATUS("router.stream_read");
        !injected.ok()) {
      return injected;
    }
    return client_->Next();
  }

  Status result_status() const override { return client_->result_status(); }

  WireSummary summary() const override { return client_->summary(); }

  void Cancel() override {
    // WireClient::Cancel is the documented cross-thread exception; a failed
    // cancel write means the connection is already dead, which terminates
    // the reader through Next anyway.
    (void)client_->Cancel();
  }

 private:
  std::unique_ptr<WireClient> client_;
};

/// An already-terminal Ok source: the replacement for a range whose shard
/// died after delivering every window (nothing left to resume).
class DrainedSource final : public ShardWindowSource {
 public:
  Result<std::optional<StreamedWindow>> Next() override {
    return std::optional<StreamedWindow>();
  }
  Status result_status() const override { return Status::Ok(); }
  WireSummary summary() const override { return WireSummary{}; }
  void Cancel() override {}
};

/// Number of complete query windows [start, end) holds.
int64_t TotalWindows(const SlidingQuery& query) {
  if (query.step <= 0 || query.end - query.start < query.window) {
    return 0;
  }
  return (query.end - query.start - query.window) / query.step + 1;
}

}  // namespace

std::vector<std::pair<int64_t, int64_t>> SplitPairRanges(int64_t num_pairs,
                                                         int shards) {
  std::vector<std::pair<int64_t, int64_t>> ranges;
  if (num_pairs <= 0 || shards <= 1) {
    ranges.emplace_back(0, std::max<int64_t>(num_pairs, 0));
    return ranges;
  }
  const int64_t num_tiles =
      (num_pairs + kSweepTilePairs - 1) / kSweepTilePairs;
  const int64_t k = std::min<int64_t>(shards, num_tiles);
  const int64_t tiles_per_shard = num_tiles / k;
  const int64_t remainder = num_tiles % k;
  int64_t tile = 0;
  for (int64_t s = 0; s < k; ++s) {
    const int64_t take = tiles_per_shard + (s < remainder ? 1 : 0);
    const int64_t begin = tile * kSweepTilePairs;
    tile += take;
    const int64_t end = std::min(num_pairs, tile * kSweepTilePairs);
    ranges.emplace_back(begin, end);
  }
  return ranges;
}

ShardRouter::ShardRouter(ShardRouterOptions options)
    : options_(std::move(options)),
      health_(std::max<size_t>(options_.shards.size(), size_t{1})) {}

std::string ShardRouter::LabelFor(int shard) const {
  if (options_.shards.empty()) {
    return "override";
  }
  const ShardEndpoint& endpoint =
      options_.shards[static_cast<size_t>(shard)];
  return endpoint.host + ":" + std::to_string(endpoint.port);
}

ShardHealth ShardRouter::health(int shard) const {
  MutexLock lock(health_mutex_);
  return health_[static_cast<size_t>(shard)].state;
}

void ShardRouter::MarkShardUp(int shard) {
  // The bounds check reads health_ too, so it belongs under the lock (the
  // vector is sized once in the constructor, but the analysis — rightly —
  // has no way to know that).
  MutexLock lock(health_mutex_);
  if (shard < 0 || static_cast<size_t>(shard) >= health_.size()) {
    return;
  }
  HealthState& state = health_[static_cast<size_t>(shard)];
  state.state = ShardHealth::kHealthy;
  state.consecutive_failures = 0;
}

bool ShardRouter::TryAdmit(int shard) {
  MutexLock lock(health_mutex_);
  HealthState& state = health_[static_cast<size_t>(shard)];
  if (state.state != ShardHealth::kDown) {
    return true;
  }
  const auto now = std::chrono::steady_clock::now();
  if (now < state.open_until) {
    return false;
  }
  // Half-open: admit this one probe, and push the window out so a failing
  // shard is not hammered by every concurrent query at once.
  state.open_until =
      now + std::chrono::milliseconds(options_.breaker_open_ms);
  return true;
}

void ShardRouter::RecordSuccess(int shard) {
  MutexLock lock(health_mutex_);
  HealthState& state = health_[static_cast<size_t>(shard)];
  state.state = ShardHealth::kHealthy;
  state.consecutive_failures = 0;
}

void ShardRouter::RecordFailure(int shard) {
  MutexLock lock(health_mutex_);
  HealthState& state = health_[static_cast<size_t>(shard)];
  ++state.consecutive_failures;
  if (state.consecutive_failures >= options_.failure_threshold) {
    state.state = ShardHealth::kDown;
    state.open_until =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.breaker_open_ms);
  } else {
    state.state = ShardHealth::kSuspect;
  }
}

Result<std::unique_ptr<WireClient>> ShardRouter::Connect(int shard) {
  if (options_.connect_override) {
    return options_.connect_override(shard);
  }
  const ShardEndpoint& endpoint =
      options_.shards[static_cast<size_t>(shard)];
  return WireClient::ConnectTcp(endpoint.host, endpoint.port,
                                options_.client);
}

Result<std::unique_ptr<WireClient>> ShardRouter::ConnectWithRetry(
    int shard, std::chrono::steady_clock::time_point deadline) {
  // Deterministic-per-process jitter stream, decorrelated across shards
  // and attempts — the PR 6 retry idiom.
  static std::atomic<uint64_t> retry_seq{0};
  Rng jitter(0x8a5cd789635d2dffULL ^
             (static_cast<uint64_t>(shard) << 32) ^
             retry_seq.fetch_add(1, std::memory_order_relaxed));
  int attempt = 0;
  while (true) {
    Result<std::unique_ptr<WireClient>> client = [&] {
      if (Status injected = DANGORON_FAILPOINT_STATUS("router.connect");
          !injected.ok()) {
        return Result<std::unique_ptr<WireClient>>(std::move(injected));
      }
      return Connect(shard);
    }();
    if (client.ok()) {
      return client;
    }
    ++attempt;
    const auto now = std::chrono::steady_clock::now();
    if (attempt > options_.connect_retries || now >= deadline) {
      return client;
    }
    double backoff_ms = static_cast<double>(options_.connect_backoff_ms) *
                        static_cast<double>(int64_t{1} << (attempt - 1)) *
                        (0.5 + jitter.NextDouble());
    if (deadline != std::chrono::steady_clock::time_point::max()) {
      const double remaining_ms =
          std::chrono::duration<double, std::milli>(deadline - now).count();
      backoff_ms = std::min(backoff_ms, std::max(0.0, remaining_ms));
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
  }
}

ShardFailoverFn ShardRouter::MakeFailover(
    WireRequest base, int64_t num_pairs,
    std::chrono::steady_clock::time_point deadline) {
  return [this, base = std::move(base), num_pairs,
          deadline](const ShardFailover& f)
             -> Result<std::vector<ShardSlice>> {
    const int fanout =
        options_.shards.empty() ? 1
                                : static_cast<int>(options_.shards.size());
    const int dead =
        (f.shard_id >= 0 && f.shard_id < fanout)
            ? static_cast<int>(f.shard_id)
            : -1;
    if (dead >= 0) {
      RecordFailure(dead);
    }

    // Re-anchor the query at the first window the dead shard never
    // delivered: window w of the original query starts at start + w*step,
    // and windows are functions of absolute basic-window stats, so the
    // resumed stream's window k is bit-identical to original window
    // resume_window + k.
    WireRequest resumed = base;
    resumed.query.start += f.resume_window * resumed.query.step;
    if (base.options.deadline_ms.has_value()) {
      const int64_t remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining_ms <= 0) {
        return Status::DeadlineExceeded(
            "deadline exhausted before the range could be re-dispatched");
      }
      // The replacement gets the *remaining* budget, not a fresh one.
      resumed.options.deadline_ms = remaining_ms;
    }

    if (f.resume_window >= TotalWindows(base.query)) {
      // The shard died after its last window, before the terminal status:
      // nothing left to recompute — cover the range with an empty source.
      std::vector<ShardSlice> out;
      ShardSlice slice;
      slice.source = std::make_unique<DrainedSource>();
      slice.pair_begin = f.pair_begin;
      slice.pair_end = f.pair_end;
      slice.label = f.label;
      slice.shard_id = f.shard_id;
      out.push_back(std::move(slice));
      return out;
    }

    auto dispatch = [&](int shard, int64_t begin,
                        int64_t end) -> Result<ShardSlice> {
      Result<std::unique_ptr<WireClient>> client =
          ConnectWithRetry(shard, deadline);
      if (!client.ok()) {
        RecordFailure(shard);
        return client.status();
      }
      WireRequest sub = resumed;
      if (!(begin == 0 && end == num_pairs)) {
        sub.query.pair_begin = begin;
        sub.query.pair_end = end;
      }
      if (Status submitted = (*client)->Submit(sub); !submitted.ok()) {
        RecordFailure(shard);
        return Status::Unavailable("shard ", shard, " (", LabelFor(shard),
                                   ") rejected the re-dispatched range: ",
                                   submitted.message());
      }
      RecordSuccess(shard);
      ShardSlice slice;
      slice.source =
          std::make_unique<WireClientSource>(std::move(*client));
      slice.pair_begin = begin;
      slice.pair_end = end;
      slice.label = LabelFor(shard);
      slice.shard_id = shard;
      return slice;
    };

    // Leg 1: the dead shard itself may be back (supervisor respawn, blip)
    // — one reconnect resumes the whole range with no re-split.
    if (dead >= 0 && TryAdmit(dead)) {
      Result<ShardSlice> slice = dispatch(dead, f.pair_begin, f.pair_end);
      if (slice.ok()) {
        std::vector<ShardSlice> out;
        out.push_back(std::move(*slice));
        return out;
      }
    }

    // Leg 2: split the dead range across the other admittable shards (each
    // takeover rides a fresh connection, so one survivor can absorb
    // several sub-ranges if its peers fail too).
    std::vector<int> candidates;
    for (int s = 0; s < fanout; ++s) {
      if (s != dead && TryAdmit(s)) {
        candidates.push_back(s);
      }
    }
    if (candidates.empty()) {
      return Status::Unavailable("no live shard to take over pairs [",
                                 f.pair_begin, ", ", f.pair_end, ")");
    }
    std::vector<std::pair<int64_t, int64_t>> ranges =
        SplitPairRanges(f.pair_end - f.pair_begin,
                        static_cast<int>(candidates.size()));
    std::vector<ShardSlice> out;
    std::vector<bool> bad(candidates.size(), false);
    Status last = Status::Ok();
    for (size_t r = 0; r < ranges.size(); ++r) {
      const int64_t begin = f.pair_begin + ranges[r].first;
      const int64_t end = f.pair_begin + ranges[r].second;
      bool placed = false;
      for (size_t c = 0; c < candidates.size() && !placed; ++c) {
        const size_t pick = (r + c) % candidates.size();
        if (bad[pick]) {
          continue;
        }
        Result<ShardSlice> slice = dispatch(candidates[pick], begin, end);
        if (slice.ok()) {
          out.push_back(std::move(*slice));
          placed = true;
        } else {
          bad[pick] = true;
          last = slice.status();
        }
      }
      if (!placed) {
        // Live replacement streams already opened for earlier sub-ranges
        // wind down through their destructors (the shards see the
        // disconnect and cancel).
        return last;
      }
    }
    return out;
  };
}

Result<std::unique_ptr<ShardMerge>> ShardRouter::Submit(
    const WireRequest& request, int64_t num_pairs) {
  const int shards = static_cast<int>(options_.shards.size());
  if (shards == 0 && !options_.connect_override) {
    return Status::InvalidArgument("shard router: no shards configured");
  }
  if (request.query.HasPairRestriction()) {
    return Status::InvalidArgument(
        "shard router: the request already carries a pair-range "
        "restriction; the router owns the pair split");
  }
  const int fanout = shards > 0 ? shards : 1;
  auto deadline = std::chrono::steady_clock::time_point::max();
  if (request.options.deadline_ms.has_value()) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(*request.options.deadline_ms);
  }

  // Plan over the shards the health machine admits; a shard that fails to
  // connect (after its bounded retries) drops out of this query and the
  // remainder re-plan over the survivors — each failure shrinks the set,
  // so the loop terminates.
  std::vector<bool> skip(static_cast<size_t>(fanout), false);
  Status last_failure = Status::Ok();
  while (true) {
    std::vector<int> eligible;
    for (int s = 0; s < fanout; ++s) {
      if (!skip[static_cast<size_t>(s)] && TryAdmit(s)) {
        eligible.push_back(s);
      }
    }
    if (eligible.empty()) {
      if (last_failure.ok()) {
        return Status::Unavailable(
            "shard router: every shard's circuit breaker is open");
      }
      return last_failure;
    }
    const std::vector<std::pair<int64_t, int64_t>> ranges =
        SplitPairRanges(num_pairs, static_cast<int>(eligible.size()));

    // Connect every shard in the plan before submitting anywhere, so a
    // late connect failure does not leave earlier shards computing a
    // fan-out that is about to be re-planned.
    std::vector<std::unique_ptr<WireClient>> clients;
    clients.reserve(ranges.size());
    bool replan = false;
    for (size_t s = 0; s < ranges.size() && !replan; ++s) {
      const int shard = eligible[s];
      Result<std::unique_ptr<WireClient>> client =
          ConnectWithRetry(shard, deadline);
      if (!client.ok()) {
        RecordFailure(shard);
        skip[static_cast<size_t>(shard)] = true;
        last_failure = Status::Unavailable(
            "shard router: shard ", shard, " (", LabelFor(shard),
            ") unreachable: ", client.status().message());
        replan = true;
        break;
      }
      clients.push_back(std::move(*client));
    }
    if (replan) {
      continue;  // dropped connections close in ~clients
    }

    std::vector<ShardSlice> slices;
    slices.reserve(ranges.size());
    for (size_t s = 0; s < ranges.size() && !replan; ++s) {
      const int shard = eligible[s];
      WireRequest sub = request;  // options inherit verbatim
      if (!(ranges[s].first == 0 && ranges[s].second == num_pairs)) {
        sub.query.pair_begin = ranges[s].first;
        sub.query.pair_end = ranges[s].second;
      }
      if (Status submitted = clients[s]->Submit(sub); !submitted.ok()) {
        RecordFailure(shard);
        skip[static_cast<size_t>(shard)] = true;
        last_failure = Status::Unavailable(
            "shard router: shard ", shard, " (", LabelFor(shard),
            ") rejected the request: ", submitted.message());
        replan = true;
        break;
      }
      ShardSlice slice;
      slice.source = std::make_unique<WireClientSource>(
          std::move(clients[s]));
      slice.pair_begin = ranges[s].first;
      slice.pair_end = ranges[s].second;
      slice.label = LabelFor(shard);
      slice.shard_id = shard;
      slices.push_back(std::move(slice));
    }
    if (replan) {
      continue;
    }
    for (size_t s = 0; s < ranges.size(); ++s) {
      RecordSuccess(eligible[s]);  // only the shards the plan used
    }

    ShardMergeOptions merge = options_.merge;
    if (request.options.queue_capacity > 0) {
      merge.queue_capacity = request.options.queue_capacity;
    }
    merge.max_failovers = options_.max_failovers;
    merge.deadline = deadline;
    merge.failover = MakeFailover(request, num_pairs, deadline);
    return std::make_unique<ShardMerge>(std::move(slices), num_pairs,
                                        merge);
  }
}

}  // namespace dangoron
