#include "router/shard_router.h"

#include <algorithm>

#include "corr/sweep_kernel.h"

namespace dangoron {

namespace {

/// ShardWindowSource over one WireClient draining one shard's response.
class WireClientSource final : public ShardWindowSource {
 public:
  explicit WireClientSource(std::unique_ptr<WireClient> client)
      : client_(std::move(client)) {}

  Result<std::optional<StreamedWindow>> Next() override {
    return client_->Next();
  }

  Status result_status() const override { return client_->result_status(); }

  WireSummary summary() const override { return client_->summary(); }

  void Cancel() override {
    // WireClient::Cancel is the documented cross-thread exception; a failed
    // cancel write means the connection is already dead, which terminates
    // the reader through Next anyway.
    (void)client_->Cancel();
  }

 private:
  std::unique_ptr<WireClient> client_;
};

}  // namespace

std::vector<std::pair<int64_t, int64_t>> SplitPairRanges(int64_t num_pairs,
                                                         int shards) {
  std::vector<std::pair<int64_t, int64_t>> ranges;
  if (num_pairs <= 0 || shards <= 1) {
    ranges.emplace_back(0, std::max<int64_t>(num_pairs, 0));
    return ranges;
  }
  const int64_t num_tiles =
      (num_pairs + kSweepTilePairs - 1) / kSweepTilePairs;
  const int64_t k = std::min<int64_t>(shards, num_tiles);
  const int64_t tiles_per_shard = num_tiles / k;
  const int64_t remainder = num_tiles % k;
  int64_t tile = 0;
  for (int64_t s = 0; s < k; ++s) {
    const int64_t take = tiles_per_shard + (s < remainder ? 1 : 0);
    const int64_t begin = tile * kSweepTilePairs;
    tile += take;
    const int64_t end = std::min(num_pairs, tile * kSweepTilePairs);
    ranges.emplace_back(begin, end);
  }
  return ranges;
}

Result<std::unique_ptr<WireClient>> ShardRouter::Connect(int shard) {
  if (options_.connect_override) {
    return options_.connect_override(shard);
  }
  const ShardEndpoint& endpoint =
      options_.shards[static_cast<size_t>(shard)];
  return WireClient::ConnectTcp(endpoint.host, endpoint.port,
                                options_.client);
}

Result<std::unique_ptr<ShardMerge>> ShardRouter::Submit(
    const WireRequest& request, int64_t num_pairs) {
  const int shards = static_cast<int>(options_.shards.size());
  if (shards == 0 && !options_.connect_override) {
    return Status::InvalidArgument("shard router: no shards configured");
  }
  if (request.query.HasPairRestriction()) {
    return Status::InvalidArgument(
        "shard router: the request already carries a pair-range "
        "restriction; the router owns the pair split");
  }
  const int fanout = shards > 0 ? shards : 1;
  const std::vector<std::pair<int64_t, int64_t>> ranges =
      SplitPairRanges(num_pairs, fanout);

  std::vector<std::unique_ptr<ShardWindowSource>> sources;
  sources.reserve(ranges.size());
  for (size_t s = 0; s < ranges.size(); ++s) {
    Result<std::unique_ptr<WireClient>> client =
        Connect(static_cast<int>(s));
    if (!client.ok()) {
      // Unavailable regardless of the transport's own code: the caller's
      // actionable fact is "shard s is unreachable", and exit-code mapping
      // (serve_flags.h) keys off it.
      return Status::Unavailable("shard router: shard ", s, " (",
                                 options_.shards.empty()
                                     ? std::string("override")
                                     : options_.shards[s].host + ":" +
                                           std::to_string(
                                               options_.shards[s].port),
                                 ") unreachable: ",
                                 client.status().message());
    }
    WireRequest sub = request;  // deadline and options inherit verbatim
    if (!(ranges[s].first == 0 && ranges[s].second == num_pairs)) {
      sub.query.pair_begin = ranges[s].first;
      sub.query.pair_end = ranges[s].second;
    }
    if (Status submitted = (*client)->Submit(sub); !submitted.ok()) {
      return Status::Unavailable("shard router: shard ", s,
                                 " rejected the request: ",
                                 submitted.message());
    }
    sources.push_back(
        std::make_unique<WireClientSource>(std::move(*client)));
  }

  ShardMergeOptions merge = options_.merge;
  if (request.options.queue_capacity > 0) {
    merge.queue_capacity = request.options.queue_capacity;
  }
  return std::make_unique<ShardMerge>(std::move(sources), merge);
}

}  // namespace dangoron
