#ifndef DANGORON_ROUTER_ROUTER_SERVER_H_
#define DANGORON_ROUTER_ROUTER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "router/shard_router.h"

namespace dangoron {

struct RouterServerOptions {
  /// IPv4 address the listener binds (loopback by default, like
  /// WireServerOptions).
  std::string bind_address = "127.0.0.1";

  /// TCP port; 0 binds an ephemeral port (read back via `port()`), -1 runs
  /// listener-less — connections arrive only through `AddConnection` (the
  /// socketpair seam tests use).
  int port = 0;

  /// Connections beyond this are accepted and immediately closed.
  int64_t max_connections = 256;
};

struct RouterServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_adopted = 0;
  int64_t connections_active = 0;  ///< gauge
  int64_t requests = 0;
  int64_t cancel_frames = 0;
  int64_t disconnect_cancels = 0;
  int64_t protocol_errors = 0;
  int64_t shard_failures = 0;  ///< merged streams that ended in an error
  int64_t failovers = 0;  ///< mid-stream shard deaths ridden out by
                          ///< re-dispatch (queries that survived a shard)
};

/// The router tier's network face: speaks the same framed wire protocol as
/// net/WireServer, but answers each request by fanning it out through a
/// ShardRouter and relaying the merged window stream. A wire client cannot
/// tell a router from a single shard — same preamble, frames, cancel and
/// terminal-status semantics.
///
/// Unlike the epoll WireServer (built for thousands of idle connections),
/// the router front end is thread-per-connection: a router carries few,
/// long-lived, mostly-streaming connections, and a blocking relay loop per
/// connection keeps the backpressure chain trivially correct — the relay
/// blocks on whichever side is slower. While a request is in flight, a
/// watcher thread polls the socket so a client cancel frame or disconnect
/// reaches the merge (and through it all K shards) immediately instead of
/// at the next window boundary.
///
/// The router holds no time-series data, so it cannot resolve a dataset
/// name to its pair count or verify content: `RegisterDataset` supplies
/// both. A registered fingerprint is stamped onto shard requests whenever
/// the client did not pin one itself, so every sharded query is
/// fingerprint-checked end to end (drift on any shard fails the query with
/// that shard's FailedPrecondition).
class RouterServer {
 public:
  RouterServer(ShardRouter* router, const RouterServerOptions& options = {});
  ~RouterServer();

  RouterServer(const RouterServer&) = delete;
  RouterServer& operator=(const RouterServer&) = delete;

  /// Registers a dataset the router may serve: its series count (for the
  /// pair split) and expected content fingerprint (0 = unpinned).
  void RegisterDataset(const std::string& name, int64_t num_series,
                       uint64_t fingerprint);

  /// Binds the listener (unless options.port == -1) and starts accepting.
  Status Start();

  /// Adopts an already-connected socket as a client connection; takes
  /// ownership of `fd`.
  Status AddConnection(int fd);

  /// Closes the listener, shuts every connection down, joins all threads.
  /// Idempotent.
  void Stop();

  /// The bound listener port (after Start; 0 when listener-less).
  int bound_port() const { return bound_port_; }

  RouterServerStats stats() const;

 private:
  struct DatasetInfo {
    int64_t num_pairs = 0;
    uint64_t fingerprint = 0;
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  /// Serves one decoded request on `fd`; returns false when the connection
  /// must close (protocol error or dead socket).
  bool ServeRequest(int fd, FrameReader* reader, const WireRequest& request);
  /// Appends a status frame and writes it; best-effort.
  bool SendStatus(int fd, const Status& status, const WireSummary& summary);
  bool WriteAll(int fd, const std::string& data);

  ShardRouter* const router_;
  const RouterServerOptions options_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::thread accept_thread_;

  mutable Mutex mutex_;
  std::unordered_map<std::string, DatasetInfo> datasets_ GUARDED_BY(mutex_);
  std::vector<std::thread> connection_threads_ GUARDED_BY(mutex_);
  std::vector<int> open_fds_ GUARDED_BY(mutex_);
  RouterServerStats stats_ GUARDED_BY(mutex_);
};

}  // namespace dangoron

#endif  // DANGORON_ROUTER_ROUTER_SERVER_H_
