#include "serve/prepared_dataset.h"

namespace dangoron {

Result<std::shared_ptr<const PreparedDataset>> PreparedDataset::Create(
    std::shared_ptr<const TimeSeriesMatrix> data, int64_t basic_window,
    ThreadPool* pool, std::optional<uint64_t> fingerprint) {
  if (data == nullptr) {
    return Status::InvalidArgument("PreparedDataset: null data");
  }
  BasicWindowIndexOptions options;
  options.basic_window = basic_window;
  options.build_pair_sketches = true;
  ASSIGN_OR_RETURN(BasicWindowIndex index,
                   BasicWindowIndex::Build(*data, options, pool));
  if (!fingerprint.has_value()) {
    fingerprint = data->ContentFingerprint();
  }
  return std::shared_ptr<const PreparedDataset>(
      new PreparedDataset(std::move(data), std::move(index), *fingerprint));
}

int64_t PreparedDataset::MemoryBytes() const {
  return index_.MemoryBytes() +
         static_cast<int64_t>(data_->values().size() * sizeof(double));
}

}  // namespace dangoron
