#ifndef DANGORON_SERVE_SERVER_H_
#define DANGORON_SERVE_SERVER_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "engine/query.h"
#include "serve/admission_queue.h"
#include "serve/query_request.h"
#include "serve/sketch_cache.h"
#include "serve/window_result_cache.h"
#include "serve/window_stream.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

/// Options of the serving layer.
struct DangoronServerOptions {
  /// Worker threads shared by all in-flight queries (0 = hardware
  /// concurrency). One pool serves both query tasks and their inner
  /// pair-block parallelism.
  int32_t num_threads = 0;

  /// Basic window granularity datasets are prepared at; query start /
  /// window / step must be multiples of it.
  int64_t basic_window = 24;

  /// Byte budget of the prepared-sketch LRU cache (sketch storage + data).
  int64_t sketch_cache_bytes = int64_t{1} << 30;

  /// Byte budget of the per-window edge-set cache.
  int64_t result_cache_bytes = int64_t{64} << 20;

  /// Admission policy: when true, a prepare whose estimated footprint
  /// (BasicWindowIndex::EstimateMemoryBytes + data) exceeds the sketch-cache
  /// byte budget is refused with ResourceExhausted *before* building,
  /// instead of building an index that the cache evicts immediately. Off by
  /// default: small deployments may prefer paying thrash over refusing.
  bool refuse_oversized_prepares = false;

  /// Admission cap on concurrent streaming submissions: each live stream
  /// owns a dedicated producer thread, so past this many unfinished streams
  /// SubmitStreaming fails terminally with ResourceExhausted instead of
  /// spawning unbounded threads.
  int64_t max_concurrent_streams = 64;

  /// Threshold-family window caching: thresholds are snapped down to a grid
  /// of `threshold_family_steps` divisions per unit (20 = 0.05 apart) for
  /// evaluation and cache keys, and results are filtered back up to the
  /// query's exact threshold on assembly. A window evaluated at family
  /// threshold beta_c answers every query threshold in [beta_c, beta_c +
  /// 1/steps), so threshold-sweep clients multiply their hit rates instead
  /// of fragmenting the cache. Results are unchanged — exact evaluation's
  /// values are threshold-independent; the threshold only filters. 0
  /// disables (exact-match keys).
  int64_t threshold_family_steps = 20;

  /// Tier served to requests that leave `ServeOptions::tier` unset — the
  /// bare `(dataset, query)` wrapper overloads among them. The exact
  /// default keeps every pre-request call site byte-identical.
  ServeTier default_tier = ServeTier::kExact;

  /// Admission policy for requests that leave `ServeOptions::admission`
  /// unset. With `kRefuse`, oversized prepares are refused outright (only
  /// when `refuse_oversized_prepares` is also on — the historical gate);
  /// with `kQueue`, they park in the deadline-aware admission queue until
  /// sketch-cache budget frees up.
  AdmissionPolicy admission = AdmissionPolicy::kRefuse;

  /// Bound on concurrently parked prepares in the admission queue; requests
  /// past it fail with ResourceExhausted instead of growing the queue.
  int64_t admission_queue_limit = 16;

  /// Degradation policy for requests that leave `ServeOptions::degrade`
  /// unset. With `kAuto`, an exact-tier request under pressure — deadline
  /// tighter than the exact cost estimate, or a mid-query
  /// ResourceExhausted — is served on the approx tier instead of failing
  /// (reported via `tier_used` and the `degraded_to_approx` counter). Off
  /// by default: degradation changes answers, so it is strictly opt-in.
  DegradePolicy degrade = DegradePolicy::kOff;
};

/// One claimed in-flight window evaluation: the claimant fulfills it (edge
/// set, or null on failure/cancellation) exactly once; joiners block on the
/// embedded waker's condition variable. Streaming joiners additionally
/// register the waker with their stream so Cancel() aborts the wait (see
/// CancelWaker) — the join is cancellable without polling.
struct WindowClaim {
  CancelWaker waker;
  bool done GUARDED_BY(waker.m) = false;
  WindowEdges edges GUARDED_BY(waker.m);
};
using WindowClaimPtr = std::shared_ptr<WindowClaim>;

/// Fulfills `claim` and wakes every joiner. Call after retiring the claim
/// from the in-flight map so new queries resolve through the cache.
void FulfillWindowClaim(const WindowClaimPtr& claim, WindowEdges edges);

/// Blocks until `claim` is fulfilled, `stream` (nullable) is cancelled, or
/// `deadline` expires, whichever happens first; wakes on fulfillment and
/// cancellation via condition variables (no polling), and times out at the
/// deadline. Returns the claim's edges (null when the claimant failed) and
/// sets `*cancelled` when the wait was abandoned because the stream
/// cancelled, `*deadline_hit` (nullable) when it was abandoned because the
/// deadline passed. The defaults reproduce the historical deadline-free
/// wait. Exposed as a free function so the cancellable-wait protocol is
/// unit-testable without a server.
WindowEdges WaitForWindowClaim(const WindowClaimPtr& claim,
                               WindowStreamState* stream, bool* cancelled,
                               const DeadlineToken& deadline = DeadlineToken(),
                               bool* deadline_hit = nullptr);

/// Per-query outcome: the result series plus where its pieces came from.
struct ServeResult {
  CorrelationMatrixSeries series;
  /// The tier that actually answered (`kAuto` requests resolve to one of
  /// the two before evaluation; never `kAuto` here).
  ServeTier tier_used = ServeTier::kExact;
  /// The prepared sketch was a cache (or in-flight dedup) hit — this query
  /// paid no index build.
  bool prepared_from_cache = false;
  int64_t windows_from_cache = 0;  ///< served from the window-result cache
  int64_t windows_computed = 0;    ///< evaluated by this query
  int64_t windows_joined = 0;      ///< awaited from a concurrent query
  /// Eq. 2 jump accounting from EngineStats (approx tier only — the exact
  /// tier never jumps): pair-window cells skipped, and jump decisions.
  int64_t cells_jumped = 0;
  int64_t jumps = 0;
  /// The request asked exact but was served approx by `DegradePolicy::kAuto`
  /// (blown deadline estimate or mid-query resource exhaustion). Never set
  /// by kAuto's own tier choice — that is selection, not degradation.
  bool degraded = false;
};

/// Aggregate server counters (monotonic since construction).
struct DangoronServerStats {
  /// Submissions processed (materialized + streaming), successful or not;
  /// window counters reflect the work actually done, so a failed or
  /// cancelled submission contributes what it computed before stopping.
  int64_t queries = 0;
  int64_t streaming_queries = 0;  ///< of which SubmitStreaming
  int64_t queries_approx = 0;      ///< served by the approx (jumping) tier
  int64_t prepares_built = 0;      ///< index builds actually paid
  int64_t prepares_shared = 0;     ///< sketch cache or in-flight dedup hits
  int64_t prepares_refused = 0;    ///< rejected by the admission policy
  int64_t prepares_queued = 0;     ///< parked in the admission queue
  int64_t deadline_exceeded = 0;   ///< requests failed on their deadline
  /// Of `deadline_exceeded`: requests whose deadline fired *mid-evaluation*
  /// — the hard-deadline abort path, not the pre-start or admission checks.
  int64_t deadline_aborted_mid_run = 0;
  /// Streaming submissions that finished Cancelled — consumer Cancel calls
  /// and, through the network front end, client disconnects (the wire
  /// layer maps a dropped connection to Cancel, so this is where a
  /// mid-stream disconnect becomes visible server-side).
  int64_t streams_cancelled = 0;
  /// Exact requests served approx by `DegradePolicy::kAuto` (see
  /// ServeResult::degraded).
  int64_t degraded_to_approx = 0;
  /// Transient prepare failures absorbed by the bounded retry loop
  /// (successful or not — each attempt after the first counts).
  int64_t prepare_retries = 0;
  int64_t windows_computed = 0;
  int64_t windows_from_cache = 0;
  int64_t windows_joined = 0;
  /// Snapshot (not monotonic): window claims currently registered in the
  /// in-flight map. Zero on a quiesced server — the chaos suite's leak
  /// check: a claim that survives its query was never retired.
  int64_t inflight_window_claims = 0;
  LruCacheStats sketch_cache;
  LruCacheStats result_cache;
};

/// Multi-tenant serving layer over the Dangoron sketch machinery: callers
/// register datasets once and submit any number of concurrent
/// `QueryRequest`s; the server shares everything shareable between them.
///
/// - `PreparedDataset` handles (dataset fingerprint -> built
///   BasicWindowIndex) are constructed once, deduplicated even across
///   *concurrent* first queries, held in an LRU sketch cache under a byte
///   budget, and shared read-only; eviction composes with the sketch
///   storage recycler (see SketchCache). Admission control handles prepares
///   that do not fit the budget: refused outright, or parked in a bounded
///   deadline-aware queue (see PrepareAdmissionQueue and
///   `ServeOptions::admission`).
/// - Per-window edge sets are cached and deduplicated: overlapping queries
///   (same dataset / basic window / threshold family, overlapping ranges)
///   reuse each other's windows instead of re-walking pair blocks, and N
///   identical concurrent submissions evaluate each window once. Windows
///   land in the cache *as they are evaluated*, so even a cancelled or
///   still-running query's prefix is reusable.
/// - Queries run as tasks on one shared ThreadPool and parallelize their
///   pair blocks on the same pool. `Submit` materializes the full series;
///   `SubmitStreaming` delivers windows one by one through a bounded
///   backpressured queue the moment each is final (see WindowStream).
///
/// Service tiers (`ServeOptions::tier`): the exact tier answers in exact
/// incremental mode (no Eq. 2 jumping) through the shared window cache —
/// jumping makes a window's result depend on the query's range, which would
/// poison cross-query reuse; exactness is also what makes results
/// byte-stable under every cache hit/miss/eviction interleaving (values
/// match NaiveEngine up to floating-point roundoff). The approx tier runs
/// Eq. 2 jumping per request for latency-critical clients: it shares the
/// prepared sketch but bypasses the window cache entirely (never reads it,
/// never writes it — range-dependent windows must not be published), so
/// approx traffic cannot perturb exact results. `kAuto` picks approx when
/// the request's deadline is tighter than the server's estimate of the
/// exact evaluation cost (a running estimate learned from warm exact
/// queries, pessimistically seeded), exact otherwise.
///
/// Thread-safe: every public method may be called from any thread.
class DangoronServer {
 public:
  explicit DangoronServer(const DangoronServerOptions& options = {});
  /// Cancels still-active streams, then drains in-flight queries before
  /// tearing down shared state.
  ~DangoronServer();

  DangoronServer(const DangoronServer&) = delete;
  DangoronServer& operator=(const DangoronServer&) = delete;

  const DangoronServerOptions& options() const { return options_; }

  /// Registers `data` under `name` (cheap: fingerprint only, no build — the
  /// first query pays the prepare). Re-registering a name replaces it;
  /// queries already in flight keep the data they resolved.
  Status AddDataset(const std::string& name,
                    std::shared_ptr<const TimeSeriesMatrix> data);
  Status AddDataset(const std::string& name, TimeSeriesMatrix data);

  /// Unregisters `name`. Cached sketches/windows for the data stay until
  /// evicted (identity is content, not name).
  Status RemoveDataset(const std::string& name);

  /// Content fingerprint of a registered dataset — the key for wiring
  /// external producers (e.g. StreamingNetworkBuilder::PublishTo) to this
  /// server's window cache.
  Result<uint64_t> DatasetFingerprint(const std::string& name) const;

  /// Series length (number of columns) of a registered dataset. The wire
  /// layer resolves a request's `end = 0` to this — a remote client can ask
  /// for "the whole range" without knowing the series length.
  Result<int64_t> DatasetLength(const std::string& name) const;

  /// True when `dataset` is registered and its sketch is currently resident
  /// in the prepared-sketch cache — i.e. a query against it skips the
  /// prepare. A pure peek: no recency bump, no hit/miss accounting. The
  /// network front end's lane classifier uses it to route warm requests to
  /// the high-priority lane and cold prepares to the low one.
  bool HasPreparedSketch(const std::string& dataset) const;

  /// Submits a request; returns immediately. The future resolves on a pool
  /// thread once the result is assembled. The request carries the service
  /// tier, deadline, and admission preference (`ServeOptions`); a
  /// default-constructed `ServeOptions` reproduces the server's configured
  /// defaults (exact tier, refuse admission, no deadline out of the box).
  std::future<Result<ServeResult>> Submit(const QueryRequest& request);

  /// Streaming submission of a request: windows are delivered through the
  /// returned handle's bounded queue in ascending order as they are
  /// evaluated (or, exact tier, read from cache), so consumers see the
  /// first window at time-to-first-window instead of full-query latency.
  /// Exact tier: every window is published to the shared window cache the
  /// moment it lands, so a cancelled (or merely slower) stream leaves a
  /// reusable prefix for the next overlapping query. Approx tier: windows
  /// are jumped per request and delivered without touching the window
  /// cache. Errors surface as the stream's terminal status; this call
  /// itself never blocks.
  std::unique_ptr<WindowStream> SubmitStreaming(const QueryRequest& request);

  /// Synchronous convenience: Submit + wait. Must not be called from a pool
  /// task (i.e. from inside another query's execution).
  Result<ServeResult> Query(const QueryRequest& request);

  /// Back-compat wrappers: build a request with default `ServeOptions`
  /// (server-default tier and admission, no deadline) — byte-identical
  /// behavior to the pre-request API for default-configured servers.
  std::future<Result<ServeResult>> Submit(const std::string& dataset,
                                          const SlidingQuery& query);
  std::unique_ptr<WindowStream> SubmitStreaming(
      const std::string& dataset, const SlidingQuery& query,
      const StreamingSubmitOptions& stream_options = {});
  Result<ServeResult> Query(const std::string& dataset,
                            const SlidingQuery& query);

  /// The family threshold `threshold` is evaluated and cached at (itself,
  /// when `threshold_family_steps` is 0 or the threshold already sits on
  /// the grid). Exposed so external cache producers can key compatibly.
  double CanonicalThreshold(double threshold, bool absolute) const;

  /// The window-result cache, for external producers that want live results
  /// (streams) visible to historical queries. Thread-safe.
  WindowResultCache* mutable_result_cache() { return &result_cache_; }

  DangoronServerStats stats() const;

 private:
  struct RegisteredDataset {
    std::shared_ptr<const TimeSeriesMatrix> data;
    uint64_t fingerprint = 0;
  };

  /// One submission, resolved at Submit time: the dataset snapshot it will
  /// run against plus its ServeOptions with the server defaults and the
  /// absolute deadline applied. `tier` may still be kAuto — it resolves to
  /// exact/approx when the task starts (the cost estimate should see the
  /// freshest measurements, and the remaining deadline budget is what the
  /// task actually has).
  struct RequestContext {
    std::shared_ptr<const TimeSeriesMatrix> data;
    uint64_t fingerprint = 0;
    SlidingQuery query;
    ServeTier tier = ServeTier::kExact;
    AdmissionPolicy admission = AdmissionPolicy::kRefuse;
    DegradePolicy degrade = DegradePolicy::kOff;
    DeadlineToken deadline;
  };

  /// Resolves `request` against the dataset registry and the server's
  /// defaults; `api` names the calling entry point in error messages.
  Result<RequestContext> ResolveRequest(const QueryRequest& request,
                                        const char* api) const;

  /// Final tier of a task about to run: kAuto picks approx when the
  /// remaining deadline budget is tighter than EstimateExactCostMs, exact
  /// otherwise (and always exact without a deadline).
  ServeTier ResolveTier(const RequestContext& ctx) const;

  /// Estimated exact-tier evaluation cost of the request: uncached cells x
  /// the running ns/cell estimate (learned from warm materialized exact
  /// queries, pessimistically seeded — see kExactCostSeedNsPerCell).
  /// Windows already in the result cache are discounted — a warm range is
  /// a near-free exact answer. Excludes prepare cost: both tiers share the
  /// prepared sketch, so it cannot differentiate them.
  double EstimateExactCostMs(const RequestContext& ctx) const;

  /// The closed-form admission estimate of preparing `data`: index bytes
  /// plus the data matrix — the same number the sketch cache is charged.
  int64_t EstimatePrepareBytes(const TimeSeriesMatrix& data) const;

  /// The query preconditions both tiers share — and must keep rejecting
  /// identically: basic-window alignment (checked before any prepare is
  /// paid) and, once prepared, coverage of the indexed basic windows.
  Status CheckQueryAligned(const SlidingQuery& query) const;
  Status CheckIndexCoverage(const SlidingQuery& query,
                            const BasicWindowIndex& index) const;

  /// The exact-tier core of materialized and streaming submissions: walks
  /// the query's windows in order, resolving each from the result cache, a
  /// concurrent query's in-flight claim, or its own evaluation in
  /// contiguous claimed runs of at most `max_batch_windows` (0 =
  /// unbounded). Evaluation drives the exact engine's native window
  /// emission: each window is cache-Put and its claim fulfilled the moment
  /// the engine emits it — mid-run, not at run end — so joiners and
  /// overlapping queries see windows at window cadence, and the task never
  /// holds an unfulfilled claim across a blocking wait (delivery inside a
  /// run uses non-blocking TryPush; blocking backpressure delivery happens
  /// only between runs, with no claims held — the no-deadlock invariant).
  /// Join waits are cancellable: a streaming plan blocked on another
  /// query's claim wakes on its own stream's Cancel (see WaitForWindowClaim)
  /// instead of waiting out the foreign evaluation. When `stream` is
  /// non-null, the contiguous prefix is delivered in order through the
  /// stream's bounded queue (filtered from the family threshold to the
  /// query's) and released from `got` after delivery; otherwise `got`
  /// retains the family-threshold edge set per window for assembly.
  /// `exact_family_out` (optional) reports whether the query threshold sits
  /// on the family grid (no assembly filtering needed). Returns Cancelled
  /// when the stream cancels mid-plan; cached windows computed before that
  /// remain reusable.
  /// `prepare_seconds_out` (optional) reports the time spent inside
  /// GetOrPrepare — including any in-flight build join or admission-queue
  /// park — so the caller's cost-model sample can subtract waits that are
  /// not evaluation. The request's deadline is enforced *mid-plan*: the
  /// walk checks it per window, claimed-run evaluation checks it at the
  /// engine's band cadence, and claim joins / backpressure delivery time
  /// out on it — a blown deadline aborts with DeadlineExceeded after
  /// delivering (and caching) every window completed before it.
  /// `next_deliver_out` (optional) reports the first window index NOT yet
  /// delivered/retained when the plan stops early — the resume point a
  /// degrading caller continues an approx plan from.
  Status RunWindowPlan(const RequestContext& ctx, int64_t max_batch_windows,
                       WindowStreamState* stream,
                       std::vector<WindowEdges>* got, ServeResult* out,
                       bool* exact_family_out,
                       double* prepare_seconds_out = nullptr,
                       int64_t* next_deliver_out = nullptr);

  /// The approx-tier core shared by the materialized and streaming paths:
  /// runs the request through the Eq. 2 jumping engine against the shared
  /// prepared sketch, *never touching the window-result cache* (jumped
  /// windows are range-dependent — publishing them would poison exact
  /// reuse, and reading cached exact windows would make the jump pattern
  /// cache-dependent). With `stream` null the series is materialized into
  /// `series_out`; otherwise each window is delivered through the stream's
  /// bounded queue (blocking is safe — this path holds no claims).
  /// `first_window` > 0 evaluates only the query's window suffix starting
  /// there (delivered under the original indices) — the degradation path's
  /// continuation after an exact plan already delivered a prefix. The
  /// deadline is enforced at window cadence on the streaming path.
  Status RunApproxPlan(const RequestContext& ctx, WindowStreamState* stream,
                       ServeResult* out, CorrelationMatrixSeries* series_out,
                       int64_t first_window = 0);

  /// The body of one materialized request, run as a pool task: deadline
  /// pre-check, tier resolution, then the exact plan + assembly or the
  /// approx plan.
  Result<ServeResult> RunQuery(const RequestContext& ctx);

  /// The body of one streaming request, run on its dedicated producer
  /// thread; always finishes `stream`.
  void RunStreamingQuery(const RequestContext& ctx,
                         int64_t max_batch_windows,
                         std::shared_ptr<WindowStreamState> stream);

  /// Folds one submission's accounting into the aggregate counters — the
  /// single rule both the materialized and streaming paths use.
  void RecordQueryStats(const ServeResult& out, bool streaming);

  /// Returns the prepared sketch for (fingerprint, basic_window), building
  /// it at most once across concurrent callers: cache hit, else join an
  /// in-flight build, else admission control, else build + publish. Under
  /// `AdmissionPolicy::kQueue` a build that does not fit the free
  /// sketch-cache budget parks in the admission queue until evictions free
  /// budget, `deadline` passes (DeadlineExceeded), or `stream` (nullable)
  /// is cancelled; under `kRefuse` the historical refuse-oversized check
  /// applies. Transient build failures (IoError, Internal — injected or
  /// real) are retried up to kPrepareMaxRetries times with jittered
  /// exponential backoff bounded by the remaining deadline;
  /// ResourceExhausted is never retried (it feeds degradation, and backoff
  /// cannot free a budget). Sets `*shared` when this query did not pay the
  /// build.
  Result<std::shared_ptr<const PreparedDataset>> GetOrPrepare(
      std::shared_ptr<const TimeSeriesMatrix> data, uint64_t fingerprint,
      AdmissionPolicy admission, const DeadlineToken& deadline,
      WindowStreamState* stream, bool* shared);

  const DangoronServerOptions options_;

  mutable Mutex datasets_mutex_;
  std::unordered_map<std::string, RegisteredDataset> datasets_
      GUARDED_BY(datasets_mutex_);

  SketchCache sketch_cache_;
  WindowResultCache result_cache_;

  // Deadline-aware wait queue for oversized prepares under
  // AdmissionPolicy::kQueue; wired as sketch_cache_'s eviction listener and
  // notified whenever a task releases its prepared handle. Declared after
  // the cache it accounts against (constructed later, destroyed earlier);
  // the destructor calls Shutdown() before draining the pool so no parked
  // task can outlive teardown.
  PrepareAdmissionQueue admission_queue_;

  // In-flight deduplication. Window claims are taken per evaluation run and
  // fulfilled window by window as the engine emits, before the claiming
  // task can block on anything — another query's claim or a stream
  // consumer's queue — so a joiner only ever waits on an evaluation that is
  // actively running (see RunWindowPlan); no wait cycle and no dependence
  // on consumer progress. Streaming joiners can additionally abandon the
  // wait on cancellation (WaitForWindowClaim + CancelWaker).
  mutable Mutex inflight_mutex_;  // mutable: stats() snapshots claims
  std::unordered_map<SketchCacheKey,
                     std::shared_future<std::shared_ptr<const PreparedDataset>>,
                     SketchCacheKeyHash>
      inflight_prepares_ GUARDED_BY(inflight_mutex_);
  std::unordered_map<WindowKey, WindowClaimPtr, WindowKeyHash>
      inflight_windows_ GUARDED_BY(inflight_mutex_);

  // Live streaming submissions. Each runs on a dedicated producer thread —
  // not a pool task — because delivery legitimately blocks on the consumer
  // (backpressure): on the pool, every undrained stream would pin a compute
  // thread, and a 1-thread pool would wedge outright under the
  // submit-stream-then-query-then-drain pattern. Inner pair-block
  // parallelism still runs on the shared pool (ParallelFor is
  // caller-helping, so external callers compose). Destruction cancels the
  // streams, then joins the threads (guarded by streams_mutex_).
  Mutex streams_mutex_;
  struct ActiveStream {
    std::thread producer;
    std::weak_ptr<WindowStreamState> state;
  };
  std::vector<ActiveStream> active_streams_ GUARDED_BY(streams_mutex_);

  // Aggregate counters (guarded by stats_mutex_), plus the running exact
  // ns/cell estimate behind kAuto's tier choice: an EWMA over materialized
  // exact queries that evaluated every window themselves (prepare time —
  // builds, joins, admission parks — subtracted; joined/cache-read plans
  // skipped), seeded pessimistically so a fresh server under tight
  // deadlines leans approx — the latency-safe direction — until real
  // measurements arrive.
  mutable Mutex stats_mutex_;
  DangoronServerStats stats_ GUARDED_BY(stats_mutex_);
  double exact_cell_ns_ GUARDED_BY(stats_mutex_);

  // Destroyed first (reverse member order): the pool's destructor drains
  // every queued and running query task while the caches, maps, and
  // registered datasets above are still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace dangoron

#endif  // DANGORON_SERVE_SERVER_H_
