#ifndef DANGORON_SERVE_SERVER_H_
#define DANGORON_SERVE_SERVER_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/query.h"
#include "serve/sketch_cache.h"
#include "serve/window_result_cache.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

/// Options of the serving layer.
struct DangoronServerOptions {
  /// Worker threads shared by all in-flight queries (0 = hardware
  /// concurrency). One pool serves both query tasks and their inner
  /// pair-block parallelism.
  int32_t num_threads = 0;

  /// Basic window granularity datasets are prepared at; query start /
  /// window / step must be multiples of it.
  int64_t basic_window = 24;

  /// Byte budget of the prepared-sketch LRU cache (sketch storage + data).
  int64_t sketch_cache_bytes = int64_t{1} << 30;

  /// Byte budget of the per-window edge-set cache.
  int64_t result_cache_bytes = int64_t{64} << 20;
};

/// Per-query outcome: the result series plus where its pieces came from.
struct ServeResult {
  CorrelationMatrixSeries series;
  /// The prepared sketch was a cache (or in-flight dedup) hit — this query
  /// paid no index build.
  bool prepared_from_cache = false;
  int64_t windows_from_cache = 0;  ///< served from the window-result cache
  int64_t windows_computed = 0;    ///< evaluated by this query
  int64_t windows_joined = 0;      ///< awaited from a concurrent query
};

/// Aggregate server counters (monotonic since construction).
struct DangoronServerStats {
  int64_t queries = 0;
  int64_t prepares_built = 0;      ///< index builds actually paid
  int64_t prepares_shared = 0;     ///< sketch cache or in-flight dedup hits
  int64_t windows_computed = 0;
  int64_t windows_from_cache = 0;
  int64_t windows_joined = 0;
  LruCacheStats sketch_cache;
  LruCacheStats result_cache;
};

/// Multi-tenant serving layer over the Dangoron sketch machinery: callers
/// register datasets once and submit any number of concurrent
/// `SlidingQuery`s; the server shares everything shareable between them.
///
/// - `PreparedDataset` handles (dataset fingerprint -> built
///   BasicWindowIndex) are constructed once, deduplicated even across
///   *concurrent* first queries, held in an LRU sketch cache under a byte
///   budget, and shared read-only; eviction composes with the sketch
///   storage recycler (see SketchCache).
/// - Per-window edge sets are cached and deduplicated: overlapping queries
///   (same dataset / basic window / threshold / window size, overlapping
///   ranges) reuse each other's windows instead of re-walking pair blocks,
///   and N identical concurrent submissions evaluate each window once.
/// - Queries run as tasks on one shared ThreadPool and parallelize their
///   pair blocks on the same pool (`Submit` returns a future immediately).
///
/// Queries are answered in exact incremental mode (no Eq. 2 jumping):
/// jumping makes a window's result depend on the query's range, which would
/// poison cross-query reuse; exactness is also what makes results
/// byte-stable under every cache hit/miss/eviction interleaving (values
/// match NaiveEngine up to floating-point roundoff).
///
/// Thread-safe: every public method may be called from any thread.
class DangoronServer {
 public:
  explicit DangoronServer(const DangoronServerOptions& options = {});
  /// Drains in-flight queries before tearing down shared state.
  ~DangoronServer();

  DangoronServer(const DangoronServer&) = delete;
  DangoronServer& operator=(const DangoronServer&) = delete;

  const DangoronServerOptions& options() const { return options_; }

  /// Registers `data` under `name` (cheap: fingerprint only, no build — the
  /// first query pays the prepare). Re-registering a name replaces it;
  /// queries already in flight keep the data they resolved.
  Status AddDataset(const std::string& name,
                    std::shared_ptr<const TimeSeriesMatrix> data);
  Status AddDataset(const std::string& name, TimeSeriesMatrix data);

  /// Unregisters `name`. Cached sketches/windows for the data stay until
  /// evicted (identity is content, not name).
  Status RemoveDataset(const std::string& name);

  /// Content fingerprint of a registered dataset — the key for wiring
  /// external producers (e.g. StreamingNetworkBuilder::PublishTo) to this
  /// server's window cache.
  Result<uint64_t> DatasetFingerprint(const std::string& name) const;

  /// Submits a query against a registered dataset; returns immediately.
  /// The future resolves on a pool thread once the result is assembled.
  std::future<Result<ServeResult>> Submit(const std::string& dataset,
                                          const SlidingQuery& query);

  /// Synchronous convenience: Submit + wait. Must not be called from a pool
  /// task (i.e. from inside another query's execution).
  Result<ServeResult> Query(const std::string& dataset,
                            const SlidingQuery& query);

  /// The window-result cache, for external producers that want live results
  /// (streams) visible to historical queries. Thread-safe.
  WindowResultCache* mutable_result_cache() { return &result_cache_; }

  DangoronServerStats stats() const;

 private:
  struct RegisteredDataset {
    std::shared_ptr<const TimeSeriesMatrix> data;
    uint64_t fingerprint = 0;
  };

  /// The body of one submitted query, run as a pool task.
  Result<ServeResult> RunQuery(std::shared_ptr<const TimeSeriesMatrix> data,
                               uint64_t fingerprint,
                               const SlidingQuery& query);

  /// Returns the prepared sketch for (fingerprint, basic_window), building
  /// it at most once across concurrent callers: cache hit, else join an
  /// in-flight build, else build + publish. Sets `*shared` when this query
  /// did not pay the build.
  Result<std::shared_ptr<const PreparedDataset>> GetOrPrepare(
      std::shared_ptr<const TimeSeriesMatrix> data, uint64_t fingerprint,
      bool* shared);

  const DangoronServerOptions options_;

  mutable std::mutex datasets_mutex_;
  std::unordered_map<std::string, RegisteredDataset> datasets_;

  SketchCache sketch_cache_;
  WindowResultCache result_cache_;

  // In-flight deduplication. A producer task fulfills every promise it
  // claimed before waiting on anyone else's future, so waits can never form
  // a cycle (see RunQuery).
  std::mutex inflight_mutex_;
  std::unordered_map<SketchCacheKey,
                     std::shared_future<std::shared_ptr<const PreparedDataset>>,
                     SketchCacheKeyHash>
      inflight_prepares_;
  std::unordered_map<WindowKey, std::shared_future<WindowEdges>, WindowKeyHash>
      inflight_windows_;

  // Aggregate counters (guarded by stats_mutex_).
  mutable std::mutex stats_mutex_;
  DangoronServerStats stats_;

  // Destroyed first (reverse member order): the pool's destructor drains
  // every queued and running query task while the caches, maps, and
  // registered datasets above are still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace dangoron

#endif  // DANGORON_SERVE_SERVER_H_
