#ifndef DANGORON_SERVE_ADMISSION_QUEUE_H_
#define DANGORON_SERVE_ADMISSION_QUEUE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "serve/sketch_cache.h"
#include "serve/window_stream.h"

namespace dangoron {

/// Bounded deadline-aware wait queue for prepares that do not fit the free
/// sketch-cache budget — the `AdmissionPolicy::kQueue` half of the serving
/// layer's admission control. Where the refuse policy rejects an oversized
/// prepare outright, this queue *parks* the request until budget frees up:
///
/// - Budget accounting: free = cache budget − bytes retained by the cache −
///   bytes reserved by admitted builds still in flight. A request fits when
///   its estimate fits the free budget; before parking, the queue reclaims
///   budget by evicting *idle* LRU cache entries (entries no in-flight
///   query holds — evicting a pinned entry frees nothing). The request's
///   own cache key is never reclaimed, and every admission round first
///   checks whether that key landed in the cache while waiting — a
///   concurrent build of the same sketch admits for free instead of being
///   evicted to make room for its own duplicate.
/// - Ordering: FIFO. While any request is parked, new arrivals park behind
///   it instead of barging into freed budget, and only the queue head may
///   reserve — so a steady trickle of small prepares cannot starve a large
///   parked one. (The flip side, head-of-line blocking, is bounded by the
///   head's deadline or cancellation; a head that leaves wakes the rest.)
/// - Wakeups: `NotifyReleased` — called by the server when a query releases
///   its prepared handle, when the cache evicts on insertion, and when a
///   reservation is released — re-checks every parked request. Parked
///   streaming requests additionally register a `CancelWaker` on their
///   stream, so `Cancel` aborts the wait immediately (the same protocol as
///   claimed-window joins).
/// - Exits: admitted (Ok, with `estimate` bytes reserved — the caller MUST
///   `Release` once the built entry is published to the cache, the build
///   failed, or it joined another build; no reservation is taken when
///   `*cached_out` is set instead); DeadlineExceeded when the request's
///   deadline passes while parked; Cancelled when its stream is cancelled;
///   ResourceExhausted when the estimate exceeds the *total* budget (no
///   eviction can ever admit it), when `max_parked` requests are already
///   waiting (the bound), or after `Shutdown`.
///
/// An estimate that fits the free budget is admitted immediately (when
/// nothing is parked ahead of it) without touching the parked list, so the
/// fast path is one mutex acquisition. Thread-safe.
class PrepareAdmissionQueue {
 public:
  /// `cache` must outlive the queue. `max_parked` bounds the parked list.
  PrepareAdmissionQueue(SketchCache* cache, int64_t max_parked);

  PrepareAdmissionQueue(const PrepareAdmissionQueue&) = delete;
  PrepareAdmissionQueue& operator=(const PrepareAdmissionQueue&) = delete;

  /// Blocks until `estimate` bytes can be reserved against the sketch-cache
  /// budget for the prepare identified by `key`, `deadline` passes
  /// (time_point::max() = wait indefinitely), `stream` (nullable) is
  /// cancelled, or the queue shuts down. If the sketch for `key` lands in
  /// the cache while waiting (a concurrent build), returns Ok with
  /// `*cached_out` set and NO reservation taken. `on_first_park`
  /// (nullable) fires once, the moment the request enters the parked
  /// list — *before* the wait, so `prepares_queued`-style accounting
  /// observes a request that is still parked.
  Status Admit(int64_t estimate, const SketchCacheKey& key,
               std::chrono::steady_clock::time_point deadline,
               WindowStreamState* stream,
               const std::function<void()>& on_first_park,
               std::shared_ptr<const PreparedDataset>* cached_out);

  /// Releases a reservation taken by a successful `Admit` and wakes parked
  /// requests. Call exactly once per admitted request, after the built
  /// entry was published to the cache (its bytes now count against the
  /// cache), the build failed, or the request joined another in-flight
  /// build.
  void Release(int64_t estimate);

  /// Wakes every parked request to re-check the budget. The server calls
  /// this when a query releases its prepared handle (the entry may now be
  /// idle-evictable) and wires it as the sketch cache's eviction listener.
  void NotifyReleased();

  /// Fails every parked (and future) `Admit` with ResourceExhausted; used
  /// by server teardown so no parked task outlives the pool drain.
  void Shutdown();

  /// Bytes reserved by admitted builds not yet published/released.
  int64_t reserved_bytes() const;
  /// Requests currently parked.
  int64_t parked() const;

 private:
  struct Parked {
    CancelWaker waker;
    // Set by NotifyReleased/Shutdown so a waiter that failed its budget
    // check under `mutex_` cannot miss a wake between releasing `mutex_`
    // and sleeping on `waker.cv` (it was already listed).
    bool notified GUARDED_BY(waker.m) = false;
  };

  /// Budget check under `mutex_`: reserves and returns true when `estimate`
  /// fits `budget − cache bytes − reserved`, reclaiming idle LRU entries
  /// (never `key`'s own) first if needed.
  bool TryReserveLocked(int64_t estimate, const SketchCacheKey& key)
      REQUIRES(mutex_);

  void RemoveParkedLocked(const std::shared_ptr<Parked>& entry)
      REQUIRES(mutex_);

  SketchCache* const cache_;
  const int64_t max_parked_;

  // Never held together with a waker's `m` or the stream's lock: Admit
  // interleaves them strictly (budget decisions under mutex_, sleeps under
  // waker.m), and NotifyReleased notifies from a copy of the parked list.
  mutable Mutex mutex_;
  int64_t reserved_bytes_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
  std::vector<std::shared_ptr<Parked>> parked_ GUARDED_BY(mutex_);
};

}  // namespace dangoron

#endif  // DANGORON_SERVE_ADMISSION_QUEUE_H_
