#ifndef DANGORON_SERVE_WINDOW_RESULT_CACHE_H_
#define DANGORON_SERVE_WINDOW_RESULT_CACHE_H_

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/query.h"
#include "serve/lru_cache.h"

namespace dangoron {

/// Identity of one evaluated window: dataset content, sketch granularity,
/// window geometry in basic windows, and the thresholding rule. Window k of
/// a sliding query maps to start_bw = (query.start + k * step) / b with
/// window_bws = window / b; under exact (non-jumping) evaluation its
/// thresholded edge set depends on nothing else — not the query's range or
/// step — which is what makes cross-query reuse sound. The threshold is
/// keyed by bit pattern (exact-match semantics, no epsilon). A pair-range
/// restriction (sharding) is part of the identity: a restricted window's
/// edge set is a subset of the full one, so shard-local entries must never
/// satisfy full-range lookups or vice versa — (0, 0) is the unrestricted
/// key, matching SlidingQuery's encoding.
struct WindowKey {
  uint64_t fingerprint = 0;
  int64_t basic_window = 0;
  int64_t window_bws = 0;
  int64_t start_bw = 0;
  uint64_t threshold_bits = 0;
  bool absolute = false;
  int64_t pair_begin = 0;
  int64_t pair_end = 0;

  static WindowKey Make(uint64_t fingerprint, int64_t basic_window,
                        int64_t window_bws, int64_t start_bw, double threshold,
                        bool absolute, int64_t pair_begin = 0,
                        int64_t pair_end = 0) {
    return WindowKey{fingerprint, basic_window, window_bws, start_bw,
                     std::bit_cast<uint64_t>(threshold), absolute,
                     pair_begin, pair_end};
  }

  bool operator==(const WindowKey&) const = default;
};

struct WindowKeyHash {
  size_t operator()(const WindowKey& key) const {
    uint64_t h = MixHash(key.fingerprint);
    h = MixHash(h ^ static_cast<uint64_t>(key.basic_window));
    h = MixHash(h ^ static_cast<uint64_t>(key.window_bws));
    h = MixHash(h ^ static_cast<uint64_t>(key.start_bw));
    h = MixHash(h ^ key.threshold_bits);
    h = MixHash(h ^ static_cast<uint64_t>(key.pair_begin));
    h = MixHash(h ^ static_cast<uint64_t>(key.pair_end));
    return static_cast<size_t>(MixHash(h ^ (key.absolute ? 1u : 0u)));
  }
};

/// Cache key of window k of an *aligned* sliding query (start/window/step
/// multiples of `basic_window`) at `threshold` — callers pass the canonical
/// family threshold, not the query's raw one. The single geometry rule
/// behind every key the serving layer derives from a query (the window
/// plan's resolution loop and the kAuto cost probe must agree bit for bit,
/// or cache reuse silently breaks); CacheWindowSink encodes the same rule
/// for open-ended producers via FixedGeometry.
inline WindowKey QueryWindowKey(uint64_t fingerprint, int64_t basic_window,
                                const SlidingQuery& query, int64_t k,
                                double threshold) {
  return WindowKey::Make(fingerprint, basic_window,
                         query.window / basic_window,
                         (query.start + k * query.step) / basic_window,
                         threshold, query.absolute, query.pair_begin,
                         query.pair_end);
}

/// A window's thresholded edge set, shared immutably between the cache and
/// every query assembling a result from it. Sorted by (i, j).
using WindowEdges = std::shared_ptr<const std::vector<Edge>>;

/// Approximate retained bytes of one cached window entry (edges plus map /
/// list bookkeeping) — the unit the cache's byte budget counts.
inline int64_t WindowEdgesBytes(const std::vector<Edge>& edges) {
  return static_cast<int64_t>(edges.size() * sizeof(Edge)) + 128;
}

/// LRU cache of per-window edge sets under a byte budget: the reuse layer
/// that lets overlapping queries (same dataset / basic window / threshold,
/// overlapping ranges) and the streaming builder share evaluated windows
/// instead of re-walking pair blocks. Thread-safe; eviction drops the
/// cache's reference only, so queries holding a window keep it valid.
using WindowResultCache =
    LruByteCache<WindowKey, std::vector<Edge>, WindowKeyHash>;

}  // namespace dangoron

#endif  // DANGORON_SERVE_WINDOW_RESULT_CACHE_H_
