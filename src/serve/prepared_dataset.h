#ifndef DANGORON_SERVE_PREPARED_DATASET_H_
#define DANGORON_SERVE_PREPARED_DATASET_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "common/status.h"
#include "common/thread_pool.h"
#include "sketch/basic_window_index.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

/// An immutable (dataset, built sketch) bundle: the unit the serving layer
/// caches under its byte budget and shares read-only across concurrent
/// queries. Construction is the only mutation; afterwards every accessor is
/// const and handles may be read from any number of threads without
/// synchronization. The handle shares ownership of the data matrix, so a
/// query that outlives the dataset's registration (or a cache eviction)
/// keeps a consistent view until it drops its reference — at which point the
/// index destructor returns the sketch blocks to the process-wide storage
/// recycler.
class PreparedDataset {
 public:
  /// Builds the pair-sketch index over `data` at `basic_window` granularity
  /// (parallel across `pool` when non-null). `fingerprint` is the data's
  /// ContentFingerprint — callers (the server registers datasets by it)
  /// already hold it, and the O(N * L) hash is not worth recomputing on
  /// every cache-miss prepare. Pass std::nullopt to have it computed here.
  static Result<std::shared_ptr<const PreparedDataset>> Create(
      std::shared_ptr<const TimeSeriesMatrix> data, int64_t basic_window,
      ThreadPool* pool, std::optional<uint64_t> fingerprint = std::nullopt);

  const TimeSeriesMatrix& data() const { return *data_; }
  const BasicWindowIndex& index() const { return index_; }
  uint64_t fingerprint() const { return fingerprint_; }
  int64_t basic_window() const { return index_.basic_window(); }

  /// Bytes this handle keeps alive: sketch storage plus the data matrix —
  /// the sketch cache's budget accounting unit.
  int64_t MemoryBytes() const;

 private:
  PreparedDataset(std::shared_ptr<const TimeSeriesMatrix> data,
                  BasicWindowIndex index, uint64_t fingerprint)
      : data_(std::move(data)),
        index_(std::move(index)),
        fingerprint_(fingerprint) {}

  std::shared_ptr<const TimeSeriesMatrix> data_;
  BasicWindowIndex index_;
  uint64_t fingerprint_ = 0;
};

}  // namespace dangoron

#endif  // DANGORON_SERVE_PREPARED_DATASET_H_
