#include "serve/window_stream.h"

#include <utility>

#include "common/failpoint.h"

namespace dangoron {

WindowStreamState::WindowStreamState(int64_t queue_capacity)
    : capacity_(queue_capacity > 0 ? queue_capacity : 1) {}

bool WindowStreamState::Push(StreamedWindow window) {
  std::unique_lock<std::mutex> lock(mutex_);
  can_push_.wait(lock, [this] {
    return cancelled_ || static_cast<int64_t>(queue_.size()) < capacity_;
  });
  if (cancelled_) {
    return false;
  }
  queue_.push_back(std::move(window));
  can_pop_.notify_one();
  return true;
}

PushResult WindowStreamState::PushUntil(
    StreamedWindow window, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto have_slot = [this] {
    return cancelled_ || static_cast<int64_t>(queue_.size()) < capacity_;
  };
  if (deadline == std::chrono::steady_clock::time_point::max()) {
    can_push_.wait(lock, have_slot);
  } else if (!can_push_.wait_until(lock, deadline, have_slot)) {
    return PushResult::kDeadlineExceeded;
  }
  if (cancelled_) {
    return PushResult::kCancelled;
  }
  queue_.push_back(std::move(window));
  can_pop_.notify_one();
  return PushResult::kPushed;
}

bool WindowStreamState::TryPush(StreamedWindow window) {
  // Armed as a "consumer is slow" fault: the push fails as if the queue
  // were full, forcing the producer down its claim-safe fallback path.
  if (DANGORON_FAILPOINT_WAKE("stream.try_push")) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (cancelled_ || static_cast<int64_t>(queue_.size()) >= capacity_) {
    return false;
  }
  queue_.push_back(std::move(window));
  can_pop_.notify_one();
  return true;
}

void WindowStreamState::AddCancelWaker(std::shared_ptr<CancelWaker> waker) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cancelled_) {
    return;  // the waiter's wait predicate observes cancelled() first
  }
  cancel_wakers_.push_back(std::move(waker));
}

void WindowStreamState::RemoveCancelWaker(const CancelWaker* waker) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < cancel_wakers_.size(); ++i) {
    if (cancel_wakers_[i].get() == waker) {
      cancel_wakers_[i] = std::move(cancel_wakers_.back());
      cancel_wakers_.pop_back();
      return;
    }
  }
}

void WindowStreamState::Finish(Status status, const StreamingSummary& summary) {
  std::lock_guard<std::mutex> lock(mutex_);
  finished_ = true;
  status_ = std::move(status);
  summary_ = summary;
  can_pop_.notify_all();
  can_push_.notify_all();
}

bool WindowStreamState::cancelled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cancelled_;
}

std::optional<StreamedWindow> WindowStreamState::Next() {
  std::unique_lock<std::mutex> lock(mutex_);
  can_pop_.wait(lock, [this] { return finished_ || !queue_.empty(); });
  if (!queue_.empty()) {
    StreamedWindow window = std::move(queue_.front());
    queue_.pop_front();
    can_push_.notify_one();
    return window;
  }
  return std::nullopt;
}

void WindowStreamState::Cancel() {
  std::vector<std::shared_ptr<CancelWaker>> wakers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_ = true;
    queue_.clear();  // release every slot so a blocked producer wakes now
    can_push_.notify_all();
    can_pop_.notify_all();
    wakers.swap(cancel_wakers_);
  }
  // Wake registered join waiters outside our lock (their wait predicates
  // call cancelled(), which takes it). The empty lock/unlock of each
  // waker's mutex pins down the waiter: it is either not yet asleep (its
  // predicate will see cancelled()) or asleep with m released (the notify
  // reaches it) — never between predicate and sleep while we notify.
  for (const std::shared_ptr<CancelWaker>& waker : wakers) {
    { std::lock_guard<std::mutex> pin(waker->m); }
    waker->cv.notify_all();
  }
}

Status WindowStreamState::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

StreamingSummary WindowStreamState::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return summary_;
}

bool WindowStreamState::finished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_;
}

}  // namespace dangoron
