#include "serve/window_stream.h"

#include <utility>

#include "common/failpoint.h"

namespace dangoron {

WindowStreamState::WindowStreamState(int64_t queue_capacity)
    : capacity_(queue_capacity > 0 ? queue_capacity : 1) {}

bool WindowStreamState::Push(StreamedWindow window) {
  MutexLock lock(mutex_);
  while (!cancelled_ && static_cast<int64_t>(queue_.size()) >= capacity_) {
    can_push_.Wait(mutex_);
  }
  if (cancelled_) {
    return false;
  }
  queue_.push_back(std::move(window));
  can_pop_.NotifyOne();
  return true;
}

PushResult WindowStreamState::PushUntil(
    StreamedWindow window, std::chrono::steady_clock::time_point deadline) {
  MutexLock lock(mutex_);
  while (!cancelled_ && static_cast<int64_t>(queue_.size()) >= capacity_) {
    if (deadline == std::chrono::steady_clock::time_point::max()) {
      can_push_.Wait(mutex_);
    } else if (can_push_.WaitUntil(mutex_, deadline) && !cancelled_ &&
               static_cast<int64_t>(queue_.size()) >= capacity_) {
      // Timed out with the queue still full and the stream still live.
      return PushResult::kDeadlineExceeded;
    }
  }
  if (cancelled_) {
    return PushResult::kCancelled;
  }
  queue_.push_back(std::move(window));
  can_pop_.NotifyOne();
  return PushResult::kPushed;
}

bool WindowStreamState::TryPush(StreamedWindow window) {
  // Armed as a "consumer is slow" fault: the push fails as if the queue
  // were full, forcing the producer down its claim-safe fallback path.
  if (DANGORON_FAILPOINT_WAKE("stream.try_push")) {
    return false;
  }
  MutexLock lock(mutex_);
  if (cancelled_ || static_cast<int64_t>(queue_.size()) >= capacity_) {
    return false;
  }
  queue_.push_back(std::move(window));
  can_pop_.NotifyOne();
  return true;
}

void WindowStreamState::AddCancelWaker(std::shared_ptr<CancelWaker> waker) {
  MutexLock lock(mutex_);
  if (cancelled_) {
    return;  // the waiter's wait predicate observes cancelled() first
  }
  cancel_wakers_.push_back(std::move(waker));
}

void WindowStreamState::RemoveCancelWaker(const CancelWaker* waker) {
  MutexLock lock(mutex_);
  for (size_t i = 0; i < cancel_wakers_.size(); ++i) {
    if (cancel_wakers_[i].get() == waker) {
      cancel_wakers_[i] = std::move(cancel_wakers_.back());
      cancel_wakers_.pop_back();
      return;
    }
  }
}

void WindowStreamState::Finish(Status status, const StreamingSummary& summary) {
  MutexLock lock(mutex_);
  finished_ = true;
  status_ = std::move(status);
  summary_ = summary;
  can_pop_.NotifyAll();
  can_push_.NotifyAll();
}

bool WindowStreamState::cancelled() const {
  MutexLock lock(mutex_);
  return cancelled_;
}

std::optional<StreamedWindow> WindowStreamState::Next() {
  MutexLock lock(mutex_);
  while (!finished_ && queue_.empty()) {
    can_pop_.Wait(mutex_);
  }
  if (!queue_.empty()) {
    StreamedWindow window = std::move(queue_.front());
    queue_.pop_front();
    can_push_.NotifyOne();
    return window;
  }
  return std::nullopt;
}

void WindowStreamState::Cancel() {
  std::vector<std::shared_ptr<CancelWaker>> wakers;
  {
    MutexLock lock(mutex_);
    cancelled_ = true;
    queue_.clear();  // release every slot so a blocked producer wakes now
    can_push_.NotifyAll();
    can_pop_.NotifyAll();
    wakers.swap(cancel_wakers_);
  }
  // Wake registered join waiters outside our lock (their wait predicates
  // call cancelled(), which takes it). The empty lock/unlock of each
  // waker's mutex pins down the waiter: it is either not yet asleep (its
  // predicate will see cancelled()) or asleep with m released (the notify
  // reaches it) — never between predicate and sleep while we notify.
  for (const std::shared_ptr<CancelWaker>& waker : wakers) {
    { MutexLock pin(waker->m); }
    waker->cv.NotifyAll();
  }
}

Status WindowStreamState::status() const {
  MutexLock lock(mutex_);
  return status_;
}

StreamingSummary WindowStreamState::summary() const {
  MutexLock lock(mutex_);
  return summary_;
}

bool WindowStreamState::finished() const {
  MutexLock lock(mutex_);
  return finished_;
}

}  // namespace dangoron
