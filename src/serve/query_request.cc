#include "serve/query_request.h"

namespace dangoron {

std::string_view ServeTierName(ServeTier tier) {
  switch (tier) {
    case ServeTier::kExact:
      return "exact";
    case ServeTier::kApprox:
      return "approx";
    case ServeTier::kAuto:
      return "auto";
  }
  return "unknown";
}

std::string_view AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kRefuse:
      return "refuse";
    case AdmissionPolicy::kQueue:
      return "queue";
  }
  return "unknown";
}

Result<ServeTier> ParseServeTier(const std::string& text) {
  if (text == "exact") {
    return ServeTier::kExact;
  }
  if (text == "approx") {
    return ServeTier::kApprox;
  }
  if (text == "auto") {
    return ServeTier::kAuto;
  }
  return Status::InvalidArgument("unknown serve tier '", text,
                                 "' (expected exact, approx, or auto)");
}

Result<AdmissionPolicy> ParseAdmissionPolicy(const std::string& text) {
  if (text == "refuse") {
    return AdmissionPolicy::kRefuse;
  }
  if (text == "queue") {
    return AdmissionPolicy::kQueue;
  }
  return Status::InvalidArgument("unknown admission policy '", text,
                                 "' (expected refuse or queue)");
}

}  // namespace dangoron
