#include "serve/query_request.h"

namespace dangoron {

std::string_view ServeTierName(ServeTier tier) {
  switch (tier) {
    case ServeTier::kExact:
      return "exact";
    case ServeTier::kApprox:
      return "approx";
    case ServeTier::kAuto:
      return "auto";
  }
  return "unknown";
}

std::string_view AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kRefuse:
      return "refuse";
    case AdmissionPolicy::kQueue:
      return "queue";
  }
  return "unknown";
}

Result<ServeTier> ParseServeTier(const std::string& text) {
  if (text == "exact") {
    return ServeTier::kExact;
  }
  if (text == "approx") {
    return ServeTier::kApprox;
  }
  if (text == "auto") {
    return ServeTier::kAuto;
  }
  return Status::InvalidArgument("unknown serve tier '", text,
                                 "' (expected exact, approx, or auto)");
}

Result<AdmissionPolicy> ParseAdmissionPolicy(const std::string& text) {
  if (text == "refuse") {
    return AdmissionPolicy::kRefuse;
  }
  if (text == "queue") {
    return AdmissionPolicy::kQueue;
  }
  return Status::InvalidArgument("unknown admission policy '", text,
                                 "' (expected refuse or queue)");
}

std::string_view DegradePolicyName(DegradePolicy policy) {
  switch (policy) {
    case DegradePolicy::kOff:
      return "off";
    case DegradePolicy::kAuto:
      return "auto";
  }
  return "unknown";
}

Result<DegradePolicy> ParseDegradePolicy(const std::string& text) {
  if (text == "off") {
    return DegradePolicy::kOff;
  }
  if (text == "auto") {
    return DegradePolicy::kAuto;
  }
  return Status::InvalidArgument("unknown degrade policy '", text,
                                 "' (expected off or auto)");
}

Status QueryRequest::Validate() const {
  if (dataset.empty()) {
    return Status::InvalidArgument("QueryRequest: empty dataset name");
  }
  if (options.deadline_ms.has_value() && *options.deadline_ms <= 0) {
    return Status::InvalidArgument(
        "QueryRequest: deadline_ms must be > 0 when set, got ",
        *options.deadline_ms, " (leave it unset for no deadline)");
  }
  if (options.queue_capacity <= 0) {
    return Status::InvalidArgument(
        "QueryRequest: queue_capacity must be > 0, got ",
        options.queue_capacity);
  }
  if (options.max_batch_windows < 0) {
    return Status::InvalidArgument(
        "QueryRequest: max_batch_windows must be >= 0 (0 = unbounded), got ",
        options.max_batch_windows);
  }
  return Status::Ok();
}

}  // namespace dangoron
