#ifndef DANGORON_SERVE_WINDOW_STREAM_H_
#define DANGORON_SERVE_WINDOW_STREAM_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "serve/query_request.h"
#include "serve/window_result_cache.h"

namespace dangoron {

/// Per-stream knobs of `DangoronServer::SubmitStreaming`.
struct StreamingSubmitOptions {
  /// Capacity of the bounded delivery queue between the query task and the
  /// consumer. When it is full the producer blocks (backpressure): a slow
  /// consumer bounds the stream's memory at `queue_capacity` windows instead
  /// of the whole result.
  int64_t queue_capacity = kDefaultStreamQueueCapacity;

  /// Cap on the contiguous window run one engine pass claims and evaluates
  /// (0 = unbounded). Within a run the exact engine emits natively window
  /// by window — each window is cached, claim-fulfilled, and delivered
  /// (non-blocking) the moment it lands — but delivery only *waits* for a
  /// slow consumer between runs, so the cap is what bounds a stream's
  /// undelivered backlog at queue_capacity plus one run of windows (0
  /// trades that bound for maximal sweep-band locality: the whole run is
  /// evaluated even if the consumer stalls, and the result accumulates
  /// until delivered). It also bounds claim granularity toward concurrent
  /// identical queries and the stream's cancel latency. Serving evaluates
  /// exactly (no jumping), so run chopping never changes results.
  int64_t max_batch_windows = kDefaultMaxBatchWindows;
};

/// One delivered window of a streaming submission.
struct StreamedWindow {
  int64_t window_index = 0;
  /// The window's edge set, sorted by (i, j) and thresholded at the
  /// *query's* threshold (family-cached windows are filtered before
  /// delivery). Shared immutably with the server's window cache.
  WindowEdges edges;
};

/// Source accounting of one streaming submission (the streaming face of
/// `ServeResult`); complete once the stream finished.
struct StreamingSummary {
  /// The tier that actually served the stream (`kAuto` resolves to one of
  /// the two before evaluation starts; never `kAuto` here).
  ServeTier tier_used = ServeTier::kExact;
  bool prepared_from_cache = false;
  int64_t windows_from_cache = 0;
  int64_t windows_computed = 0;
  int64_t windows_joined = 0;
  /// Eq. 2 jump accounting (approx tier only; see EngineStats).
  int64_t cells_jumped = 0;
  int64_t jumps = 0;
  /// The request asked exact but degrade=auto served (part of) it approx.
  bool degraded = false;
};

/// A condition variable a consumer blocked on something *other than* the
/// stream's own queue registers with the stream, so `Cancel` can wake it:
/// the cancellable-join primitive behind DangoronServer's claimed-window
/// waits (a joiner sleeps on its claim's cv; without registration only the
/// claim's fulfiller could wake it, and a cancelled stream would stay
/// blocked until the foreign evaluation finished). Waiters hold `m` while
/// waiting on `cv` with a predicate that re-checks the stream's cancel
/// flag; `Cancel` notifies through the lock so a waiter between predicate
/// check and sleep cannot miss it.
struct CancelWaker {
  Mutex m;
  CondVar cv;
};

/// Outcome of a deadline-aware blocking push (`PushUntil`).
enum class PushResult : int8_t {
  kPushed = 0,
  kCancelled = 1,          ///< the stream was cancelled; stop producing
  kDeadlineExceeded = 2,   ///< the deadline passed while blocked on a slot
};

/// The shared channel between a streaming query task (producer) and the
/// consumer-facing `WindowStream` handle: a bounded FIFO of finished windows
/// plus the terminal status. Server-internal — consumers use `WindowStream`;
/// it is public only so the server and tests can drive the producer side.
///
/// Producer protocol: any number of `Push` calls (ascending window indices),
/// then exactly one `Finish`. `Push` blocks while the queue is full and the
/// stream is live; it returns false once the stream is cancelled, which is
/// the producer's signal to stop. `cancelled()` lets a producer poll between
/// batches so evaluation (not just delivery) stops early.
class WindowStreamState {
 public:
  explicit WindowStreamState(int64_t queue_capacity);

  // --- producer side (the server's streaming query task) ---

  /// Enqueues one window; blocks while the queue is full. Returns false
  /// when the stream is cancelled (the window is dropped).
  bool Push(StreamedWindow window);

  /// Deadline-aware Push: additionally gives up with kDeadlineExceeded when
  /// `deadline` passes while blocked on a full queue (time_point::max() =
  /// wait indefinitely, i.e. plain Push). A producer serving a hard
  /// deadline must not let a slow consumer hold it past the abort point —
  /// the terminal status is itself a delivery the consumer is waiting for.
  PushResult PushUntil(StreamedWindow window,
                       std::chrono::steady_clock::time_point deadline);

  /// Non-blocking Push: enqueues and returns true only when a queue slot is
  /// free and the stream is live; returns false (window untouched in
  /// effect — callers keep their copy) when the queue is full or the
  /// stream is cancelled, distinguishable via `cancelled()`. Lets a
  /// producer that currently holds unfulfilled evaluation claims deliver
  /// opportunistically without violating the rule that claims are never
  /// held across a blocking wait.
  bool TryPush(StreamedWindow window);

  /// Terminal: publishes the stream's status and accounting, wakes everyone.
  void Finish(Status status, const StreamingSummary& summary);

  bool cancelled() const;

  /// Registers `waker` to be notified by `Cancel` (see CancelWaker). A
  /// no-op on an already-cancelled stream — the waiter's predicate sees
  /// `cancelled()` before it can sleep. Wakers are one-shot: Cancel takes
  /// the registered set with it.
  void AddCancelWaker(std::shared_ptr<CancelWaker> waker);

  /// Unregisters a waker once its wait resolved (claim fulfilled) so the
  /// stream does not accumulate dead registrations.
  void RemoveCancelWaker(const CancelWaker* waker);

  // --- consumer side (via WindowStream) ---

  /// Pops the next window; blocks until one is available or the stream is
  /// terminal. After `Cancel`, blocks until the producer acknowledged (its
  /// `Finish`), so a nullopt return always means the producer is done.
  std::optional<StreamedWindow> Next();

  /// Requests cancellation: drops queued windows (releasing their slots so
  /// a blocked producer wakes immediately) and makes further Push fail.
  void Cancel();

  /// Terminal status — Ok for a fully delivered stream, Cancelled after
  /// `Cancel`, the failure otherwise. Meaningful once `Next` returned
  /// nullopt (i.e. after the producer's Finish).
  Status status() const;

  /// Source accounting; meaningful once `Next` returned nullopt.
  StreamingSummary summary() const;

  bool finished() const;

 private:
  const int64_t capacity_;
  mutable Mutex mutex_;
  CondVar can_push_;
  CondVar can_pop_;
  std::deque<StreamedWindow> queue_ GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<CancelWaker>> cancel_wakers_ GUARDED_BY(mutex_);
  bool cancelled_ GUARDED_BY(mutex_) = false;
  bool finished_ GUARDED_BY(mutex_) = false;
  Status status_ GUARDED_BY(mutex_) = Status::Ok();
  StreamingSummary summary_ GUARDED_BY(mutex_);
};

/// Consumer handle of one `DangoronServer::SubmitStreaming` call. Windows
/// arrive in ascending window_index order, each exactly once; drain with
///
///   while (auto window = stream->Next()) { consume(*window); }
///   RETURN_IF_ERROR(stream->status());
///
/// The producer runs on a dedicated thread (not the server's compute
/// pool), so a full queue blocks only that stream — never a pool thread —
/// and claims are fulfilled before delivery can block, so other queries
/// never depend on this consumer's pace. `Next` must still not be called
/// from inside a server pool task (the same rule as the synchronous
/// `Query`).
///
/// Destroying the handle cancels an unfinished stream, so an abandoned
/// stream finishes promptly instead of idling behind a queue nobody reads.
class WindowStream {
 public:
  explicit WindowStream(std::shared_ptr<WindowStreamState> state)
      : state_(std::move(state)) {}
  ~WindowStream() {
    if (state_ != nullptr && !state_->finished()) {
      state_->Cancel();
    }
  }

  WindowStream(const WindowStream&) = delete;
  WindowStream& operator=(const WindowStream&) = delete;

  /// Blocks for the next window; nullopt once the stream is terminal (the
  /// producer finished, failed, or acknowledged cancellation).
  std::optional<StreamedWindow> Next() { return state_->Next(); }

  /// Mid-stream cancellation: already-queued windows are dropped, the
  /// producer stops at its next batch boundary, and every window it already
  /// computed stays in the server's cache for the next overlapping query.
  void Cancel() { state_->Cancel(); }

  /// Terminal status; meaningful once Next() returned nullopt.
  Status status() const { return state_->status(); }

  /// Source accounting; meaningful once Next() returned nullopt.
  StreamingSummary summary() const { return state_->summary(); }

 private:
  std::shared_ptr<WindowStreamState> state_;
};

}  // namespace dangoron

#endif  // DANGORON_SERVE_WINDOW_STREAM_H_
