#include "serve/server.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <utility>

#include "engine/dangoron_engine.h"
#include "sketch/basic_window_index.h"

namespace dangoron {

void FulfillWindowClaim(const WindowClaimPtr& claim, WindowEdges edges) {
  {
    std::lock_guard<std::mutex> lock(claim->waker.m);
    claim->done = true;
    claim->edges = std::move(edges);
  }
  claim->waker.cv.notify_all();
}

WindowEdges WaitForWindowClaim(const WindowClaimPtr& claim,
                               WindowStreamState* stream, bool* cancelled) {
  *cancelled = false;
  if (stream != nullptr) {
    // Alias the waker to the claim so the registration keeps it alive even
    // if the claimant retires the claim while we sleep.
    stream->AddCancelWaker(std::shared_ptr<CancelWaker>(claim, &claim->waker));
  }
  WindowEdges edges;
  {
    std::unique_lock<std::mutex> lock(claim->waker.m);
    // The predicate reads the stream's cancel flag under the waker's lock;
    // Cancel() notifies through that lock (see CancelWaker), so the wait
    // wakes on fulfillment *or* cancellation, whichever is first.
    claim->waker.cv.wait(lock, [&] {
      return claim->done || (stream != nullptr && stream->cancelled());
    });
    if (claim->done) {
      edges = claim->edges;
    } else {
      *cancelled = true;
    }
  }
  if (stream != nullptr) {
    stream->RemoveCancelWaker(&claim->waker);
  }
  return edges;
}

namespace {

// Bridges the exact engine's native window emission into a callback; the
// callback returns false to cancel the producing query.
class CallbackWindowSink final : public WindowSink {
 public:
  explicit CallbackWindowSink(
      std::function<bool(int64_t, std::vector<Edge>)> on_window)
      : on_window_(std::move(on_window)) {}

  bool OnWindow(int64_t window_index, std::vector<Edge> edges) override {
    return on_window_(window_index, std::move(edges));
  }

 private:
  std::function<bool(int64_t, std::vector<Edge>)> on_window_;
};

// The evaluation mode of the serving layer: exact incremental — a window's
// edge set must not depend on the query range it was computed for, or
// cross-query reuse would change results.
DangoronOptions ServingEngineOptions(int64_t basic_window) {
  DangoronOptions options;
  options.basic_window = basic_window;
  options.enable_jumping = false;
  options.horizontal_pruning = false;
  return options;
}

// Cache keys and the family machinery compare thresholds by bit pattern.
bool SameThresholdBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

// Filters a family-threshold edge set down to `query`'s exact threshold.
// Sound because the family threshold is <= the query's, so the cached set
// is a superset whose values are threshold-independent (exact evaluation).
std::vector<Edge> FilterEdges(const std::vector<Edge>& edges,
                              const SlidingQuery& query) {
  std::vector<Edge> out;
  out.reserve(edges.size());
  for (const Edge& edge : edges) {
    if (query.IsEdge(edge.value)) {
      out.push_back(edge);
    }
  }
  return out;
}

}  // namespace

DangoronServer::DangoronServer(const DangoronServerOptions& options)
    : options_(options),
      sketch_cache_(options.sketch_cache_bytes),
      result_cache_(options.result_cache_bytes),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {}

DangoronServer::~DangoronServer() {
  // Cancel live streams, then join their producer threads: a producer
  // blocked on a consumer that will never drain wakes on Cancel, fulfills
  // its claims, finishes its stream, and exits.
  std::vector<ActiveStream> streams;
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    streams.swap(active_streams_);
  }
  for (ActiveStream& stream : streams) {
    if (std::shared_ptr<WindowStreamState> state = stream.state.lock()) {
      state->Cancel();
    }
    if (stream.producer.joinable()) {
      stream.producer.join();
    }
  }
  // Drain before member teardown begins: in-flight query tasks schedule
  // ParallelFor helpers on the pool, which the pool's own destructor (it
  // runs with shutdown already flagged) would refuse. Wait() covers those
  // helpers too — a task registers them before it completes, so the
  // in-flight count stays nonzero until the whole query is done.
  pool_->Wait();
}

Status DangoronServer::AddDataset(
    const std::string& name, std::shared_ptr<const TimeSeriesMatrix> data) {
  if (name.empty()) {
    return Status::InvalidArgument("AddDataset: empty name");
  }
  if (data == nullptr || data->empty()) {
    return Status::InvalidArgument("AddDataset: empty dataset '", name, "'");
  }
  if (data->CountMissing() > 0) {
    return Status::FailedPrecondition(
        "AddDataset: dataset '", name,
        "' contains missing values; run InterpolateMissing first");
  }
  if (data->length() < options_.basic_window) {
    return Status::InvalidArgument(
        "AddDataset: dataset '", name, "' has length ", data->length(),
        ", shorter than one basic window of ", options_.basic_window);
  }
  RegisteredDataset registered;
  registered.fingerprint = data->ContentFingerprint();
  registered.data = std::move(data);
  std::lock_guard<std::mutex> lock(datasets_mutex_);
  datasets_[name] = std::move(registered);
  return Status::Ok();
}

Status DangoronServer::AddDataset(const std::string& name,
                                  TimeSeriesMatrix data) {
  return AddDataset(name,
                    std::make_shared<const TimeSeriesMatrix>(std::move(data)));
}

Status DangoronServer::RemoveDataset(const std::string& name) {
  std::lock_guard<std::mutex> lock(datasets_mutex_);
  if (datasets_.erase(name) == 0) {
    return Status::NotFound("RemoveDataset: unknown dataset '", name, "'");
  }
  return Status::Ok();
}

Result<uint64_t> DangoronServer::DatasetFingerprint(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(datasets_mutex_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("DatasetFingerprint: unknown dataset '", name,
                            "'");
  }
  return it->second.fingerprint;
}

double DangoronServer::CanonicalThreshold(double threshold,
                                          bool absolute) const {
  const int64_t steps = options_.threshold_family_steps;
  if (steps <= 0) {
    return threshold;
  }
  // Snap down to the grid. The epsilon absorbs products like 0.7 * 20 =
  // 13.999999999999998 landing a hair under their grid point; the guard
  // keeps the invariant canonical <= threshold when the epsilon overshoots
  // (a threshold just *below* a grid point must not snap up past it —
  // filtering only removes edges, so the cached set has to be a superset).
  const double steps_d = static_cast<double>(steps);
  double grid = std::floor(threshold * steps_d + 1e-7);
  double canonical = grid / steps_d;
  if (canonical > threshold) {
    canonical = (grid - 1.0) / steps_d;
  }
  // Never snap across a density cliff. At the accept-everything threshold
  // (0 in absolute mode, -1 otherwise) a family window is a full
  // n*(n-1)/2 clique; and in non-absolute mode, snapping a small positive
  // threshold to 0 caches the c >= 0 half-clique (~half of all pairs on
  // uncorrelated data) to answer a query that keeps almost none of it.
  // Below the bottom useful grid step, fall back to exact-match keys.
  const double accept_all = absolute ? 0.0 : -1.0;
  if (canonical <= accept_all && threshold > accept_all) {
    return threshold;
  }
  if (!absolute && threshold > 0.0 && canonical <= 0.0) {
    return threshold;
  }
  return std::max(canonical, accept_all);
}

std::future<Result<ServeResult>> DangoronServer::Submit(
    const std::string& dataset, const SlidingQuery& query) {
  RegisteredDataset registered;
  {
    std::lock_guard<std::mutex> lock(datasets_mutex_);
    auto it = datasets_.find(dataset);
    if (it == datasets_.end()) {
      RecordQueryStats(ServeResult{}, /*streaming=*/false);
      std::promise<Result<ServeResult>> failed;
      failed.set_value(
          Status::NotFound("Submit: unknown dataset '", dataset, "'"));
      return failed.get_future();
    }
    registered = it->second;
  }
  return pool_->Async([this, data = std::move(registered.data),
                       fingerprint = registered.fingerprint,
                       query]() mutable -> Result<ServeResult> {
    return RunQuery(std::move(data), fingerprint, query);
  });
}

std::unique_ptr<WindowStream> DangoronServer::SubmitStreaming(
    const std::string& dataset, const SlidingQuery& query,
    const StreamingSubmitOptions& stream_options) {
  auto state = std::make_shared<WindowStreamState>(
      stream_options.queue_capacity);
  RegisteredDataset registered;
  {
    std::lock_guard<std::mutex> lock(datasets_mutex_);
    auto it = datasets_.find(dataset);
    if (it == datasets_.end()) {
      RecordQueryStats(ServeResult{}, /*streaming=*/true);
      state->Finish(Status::NotFound("SubmitStreaming: unknown dataset '",
                                     dataset, "'"),
                    StreamingSummary{});
      return std::make_unique<WindowStream>(std::move(state));
    }
    registered = it->second;
  }
  // The producer gets a dedicated thread, not a pool task: delivery blocks
  // on the consumer by design (backpressure), and blocking must never pin a
  // compute thread (a 1-thread pool would otherwise wedge under
  // submit-stream, query, drain). Pair-block evaluation inside still runs
  // on the shared pool. Threads are admission-capped and reaped here.
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    // Reap producers whose stream already finished (join is then
    // instantaneous), and keep the live ones. A plain loop, not erase_if:
    // joining the thread is a side effect the remove_if predicate contract
    // does not allow.
    std::vector<ActiveStream> live;
    live.reserve(active_streams_.size() + 1);
    for (ActiveStream& active : active_streams_) {
      const std::shared_ptr<WindowStreamState> stream_state =
          active.state.lock();
      if (stream_state != nullptr && !stream_state->finished()) {
        live.push_back(std::move(active));
      } else if (active.producer.joinable()) {
        active.producer.join();
      }
    }
    active_streams_ = std::move(live);
    if (static_cast<int64_t>(active_streams_.size()) >=
        options_.max_concurrent_streams) {
      RecordQueryStats(ServeResult{}, /*streaming=*/true);
      state->Finish(
          Status::ResourceExhausted(
              "SubmitStreaming: ", active_streams_.size(),
              " streams already live (max_concurrent_streams = ",
              options_.max_concurrent_streams,
              "); drain or cancel existing streams first"),
          StreamingSummary{});
      return std::make_unique<WindowStream>(std::move(state));
    }
    std::thread producer([this, data = std::move(registered.data),
                          fingerprint = registered.fingerprint, query,
                          stream_options, state]() mutable {
      RunStreamingQuery(std::move(data), fingerprint, query, stream_options,
                        std::move(state));
    });
    active_streams_.push_back(ActiveStream{std::move(producer), state});
  }
  return std::make_unique<WindowStream>(std::move(state));
}

Result<ServeResult> DangoronServer::Query(const std::string& dataset,
                                          const SlidingQuery& query) {
  return Submit(dataset, query).get();
}

Result<std::shared_ptr<const PreparedDataset>> DangoronServer::GetOrPrepare(
    std::shared_ptr<const TimeSeriesMatrix> data, uint64_t fingerprint,
    bool* shared) {
  const SketchCacheKey key{fingerprint, options_.basic_window};
  if (auto cached = sketch_cache_.Get(key)) {
    *shared = true;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.prepares_shared;
    return cached;
  }

  // Admission policy: an index that can never fit the budget would be built
  // only to be evicted on insertion (and would flush every warm sketch's
  // LRU position on its way through the build's memory pressure). Refuse
  // up front from the closed-form estimate instead.
  if (options_.refuse_oversized_prepares) {
    BasicWindowIndexOptions index_options;
    index_options.basic_window = options_.basic_window;
    index_options.build_pair_sketches = true;
    const int64_t estimate =
        BasicWindowIndex::EstimateMemoryBytes(data->num_series(),
                                              data->length(), index_options) +
        static_cast<int64_t>(data->values().size() * sizeof(double));
    if (estimate > sketch_cache_.byte_budget()) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.prepares_refused;
      }
      return Status::ResourceExhausted(
          "DangoronServer: prepare refused by admission policy — estimated ",
          estimate, " bytes exceeds the sketch-cache budget of ",
          sketch_cache_.byte_budget(), " bytes");
    }
  }

  std::promise<std::shared_ptr<const PreparedDataset>> promise;
  std::shared_future<std::shared_ptr<const PreparedDataset>> join;
  bool producer = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_prepares_.find(key);
    if (it != inflight_prepares_.end()) {
      join = it->second;
    } else {
      producer = true;
      inflight_prepares_.emplace(key, promise.get_future().share());
    }
  }

  if (!producer) {
    // Another query is building this sketch right now; its task fulfills
    // the future before it waits on anything, so this cannot cycle.
    if (auto prepared = join.get()) {
      *shared = true;
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.prepares_shared;
      return prepared;
    }
    // The producer's build failed; fall through and pay our own build so
    // one failure does not poison every waiter with an opaque error.
  }

  auto prepared_or =
      PreparedDataset::Create(std::move(data), options_.basic_window,
                              pool_.get(), fingerprint);
  std::shared_ptr<const PreparedDataset> prepared =
      prepared_or.ok() ? *prepared_or : nullptr;
  if (producer) {
    if (prepared != nullptr) {
      // Publish to the cache before retiring the in-flight entry so a new
      // query always finds one of the two.
      sketch_cache_.Put(key, prepared, prepared->MemoryBytes());
    }
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_prepares_.erase(key);
    }
    promise.set_value(prepared);
  } else if (prepared != nullptr) {
    sketch_cache_.Put(key, prepared, prepared->MemoryBytes());
  }
  if (!prepared_or.ok()) {
    return prepared_or.status();
  }
  *shared = false;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.prepares_built;
  }
  return prepared;
}

Status DangoronServer::RunWindowPlan(
    const std::shared_ptr<const TimeSeriesMatrix>& data, uint64_t fingerprint,
    const SlidingQuery& query, int64_t max_batch_windows,
    WindowStreamState* stream, std::vector<WindowEdges>* got_out,
    ServeResult* out, bool* exact_family_out) {
  RETURN_IF_ERROR(query.Validate(data->length()));
  const int64_t b = options_.basic_window;
  if (query.start % b != 0 || query.window % b != 0 || query.step % b != 0) {
    return Status::InvalidArgument(
        "DangoronServer: query start/window/step must be multiples of the "
        "server basic window ",
        b, " (got start=", query.start, " window=", query.window,
        " step=", query.step, ")");
  }

  ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> prepared,
                   GetOrPrepare(data, fingerprint, &out->prepared_from_cache));

  const int64_t num_windows = query.NumWindows();
  const int64_t ns = query.window / b;
  const int64_t m = query.step / b;
  const int64_t base_w0 = query.start / b;
  if (base_w0 + (num_windows - 1) * m + ns >
      prepared->index().num_basic_windows()) {
    return Status::OutOfRange(
        "DangoronServer: query needs basic windows up to ",
        base_w0 + (num_windows - 1) * m + ns, " but only ",
        prepared->index().num_basic_windows(), " are indexed");
  }

  // Threshold-family canonicalization: evaluate/cache at the family
  // threshold, filter back up to the query's on delivery/assembly.
  const double canonical =
      CanonicalThreshold(query.threshold, query.absolute);
  const bool exact_family = SameThresholdBits(canonical, query.threshold);
  if (exact_family_out != nullptr) {
    *exact_family_out = exact_family;
  }
  SlidingQuery eval = query;
  eval.threshold = canonical;

  auto key_for = [&](int64_t k) {
    return WindowKey::Make(fingerprint, b, ns, base_w0 + k * m, canonical,
                           query.absolute);
  };

  std::vector<WindowEdges>& got = *got_out;
  got.assign(static_cast<size_t>(num_windows), nullptr);

  // In-order streaming delivery of the contiguous finished prefix.
  // Filtering from the family threshold to the query's happens here, at the
  // delivery edge — the cache keeps the family-threshold superset. The
  // blocking form waits out backpressure and therefore may only run while
  // this task holds no unfulfilled claims; the non-blocking form runs from
  // inside the evaluation sink (claims outstanding) and simply stops at a
  // full queue, leaving the rest for the next blocking edge.
  int64_t next_deliver = 0;
  bool delivery_cancelled = false;
  // Memo of the head window's family-to-query filtered copy: a full queue
  // fails TryPush repeatedly on the same head window, and refiltering it on
  // every attempt would be O(windows landed) redundant copies.
  int64_t filtered_index = -1;
  WindowEdges filtered_edges;
  auto deliver_ready = [&](bool blocking) {
    if (stream == nullptr || delivery_cancelled) {
      return;
    }
    while (next_deliver < num_windows &&
           got[static_cast<size_t>(next_deliver)] != nullptr) {
      WindowEdges edges = got[static_cast<size_t>(next_deliver)];
      if (!exact_family) {
        if (filtered_index != next_deliver) {
          filtered_edges = std::make_shared<const std::vector<Edge>>(
              FilterEdges(*edges, query));
          filtered_index = next_deliver;
        }
        edges = filtered_edges;
      }
      StreamedWindow window{next_deliver, std::move(edges)};
      const bool pushed = blocking ? stream->Push(std::move(window))
                                   : stream->TryPush(std::move(window));
      if (!pushed) {
        // A blocking Push fails only on cancellation; TryPush also fails on
        // a full queue, which is not terminal.
        if (blocking || stream->cancelled()) {
          delivery_cancelled = true;
        }
        return;
      }
      // Streaming never assembles a series, so drop the plan's reference
      // once delivered: peak memory is the queue plus the in-flight run,
      // not the whole result (the cache keeps its own budgeted reference).
      got[static_cast<size_t>(next_deliver)] = nullptr;
      ++next_deliver;
    }
  };
  auto plan_cancelled = [&]() {
    return delivery_cancelled || (stream != nullptr && stream->cancelled());
  };

  const DangoronOptions engine_options = ServingEngineOptions(b);

  // Walk the windows in order, resolving each from the cache, a concurrent
  // query's in-flight claim, or our own evaluation. Claims are taken *per
  // run*, immediately before evaluating, and fulfilled (cache Put + claim
  // wake) window by window as the exact engine's window-major sweep emits —
  // so this task never holds an unfulfilled claim across anything that
  // blocks (a join wait, or a delivery push stuck on a slow stream
  // consumer; in-run delivery is non-blocking TryPush). That is the
  // no-deadlock invariant of the dedup protocol: joiners wait only on
  // claims whose evaluation is actively running — and at window cadence,
  // since a claim is fulfilled the moment its window lands, not when the
  // whole run does. The engine's native emission is also what replaced the
  // old chop-into-`max_batch_windows`-sub-queries workaround: consumers see
  // the first window after one window's sweep, and each window is published
  // to the result cache as it lands, so even a cancelled plan leaves a
  // reusable prefix.
  int64_t k = 0;
  while (k < num_windows) {
    if (plan_cancelled()) {
      return Status::Cancelled("DangoronServer: stream cancelled mid-plan");
    }
    if (k < next_deliver || got[static_cast<size_t>(k)] != nullptr) {
      ++k;  // already resolved (and possibly delivered + released)
      continue;
    }

    // Resolve window k under the dedup lock; if it is free, claim the
    // maximal contiguous free run from k (capped at max_batch_windows).
    WindowClaimPtr join;
    std::vector<WindowClaimPtr> claims;
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      if (auto cached = result_cache_.Get(key_for(k))) {
        got[static_cast<size_t>(k)] = std::move(cached);
        ++out->windows_from_cache;
      } else if (auto it = inflight_windows_.find(key_for(k));
                 it != inflight_windows_.end()) {
        join = it->second;
      } else {
        const int64_t cap =
            max_batch_windows > 0 ? max_batch_windows : num_windows;
        int64_t claimed = 1;
        while (claimed < cap && k + claimed < num_windows) {
          const WindowKey key = key_for(k + claimed);
          if (auto cached = result_cache_.Get(key)) {
            // Stash the probe hit so the main loop never re-reads it.
            got[static_cast<size_t>(k + claimed)] = std::move(cached);
            ++out->windows_from_cache;
            break;
          }
          if (inflight_windows_.find(key) != inflight_windows_.end()) {
            break;
          }
          ++claimed;
        }
        claims.reserve(static_cast<size_t>(claimed));
        for (int64_t d = 0; d < claimed; ++d) {
          claims.push_back(std::make_shared<WindowClaim>());
          inflight_windows_.emplace(key_for(k + d), claims.back());
        }
      }
    }

    if (got[static_cast<size_t>(k)] != nullptr) {
      deliver_ready(/*blocking=*/true);
      ++k;
      continue;
    }

    if (join != nullptr) {
      // Wait holding no claims — and cancellably: a streaming plan wakes on
      // its own stream's Cancel instead of waiting out the foreign
      // evaluation. A null result means the claimant failed (or was
      // cancelled) after claiming; evaluate the window ourselves rather
      // than inheriting its error.
      bool join_cancelled = false;
      WindowEdges edges = WaitForWindowClaim(join, stream, &join_cancelled);
      if (join_cancelled) {
        return Status::Cancelled(
            "DangoronServer: stream cancelled while joining a claimed "
            "window");
      }
      if (edges == nullptr) {
        SlidingQuery sub = eval;
        sub.start = query.start + k * query.step;
        sub.end = sub.start + query.window;
        ASSIGN_OR_RETURN(CorrelationMatrixSeries single,
                         DangoronEngine::QueryPrepared(
                             engine_options, prepared->index(), sub,
                             pool_.get(), nullptr));
        edges = std::make_shared<std::vector<Edge>>(
            std::move(*single.MutableWindow(0)));
        result_cache_.Put(key_for(k), edges, WindowEdgesBytes(*edges));
        ++out->windows_computed;
      } else {
        ++out->windows_joined;
      }
      got[static_cast<size_t>(k)] = std::move(edges);
      deliver_ready(/*blocking=*/true);
      ++k;
      continue;
    }

    // Evaluate the claimed run [k, k + claims.size()) in one engine pass,
    // riding the exact engine's native window-major emission: each window
    // is cached, its claim fulfilled, and delivery attempted the moment
    // the engine emits it.
    const int64_t claimed = static_cast<int64_t>(claims.size());
    auto retire = [&](int64_t d, WindowEdges edges) {
      {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_windows_.erase(key_for(k + d));
      }
      FulfillWindowClaim(claims[static_cast<size_t>(d)], std::move(edges));
    };
    int64_t landed = 0;
    CallbackWindowSink run_sink([&](int64_t d, std::vector<Edge> raw) {
      auto edges = std::make_shared<std::vector<Edge>>(std::move(raw));
      result_cache_.Put(key_for(k + d), edges, WindowEdgesBytes(*edges));
      retire(d, edges);
      got[static_cast<size_t>(k + d)] = std::move(edges);
      ++out->windows_computed;
      ++landed;
      deliver_ready(/*blocking=*/false);
      return !plan_cancelled();
    });
    SlidingQuery sub = eval;
    sub.start = query.start + k * query.step;
    sub.end = sub.start + (claimed - 1) * query.step + query.window;
    const Status eval_status = DangoronEngine::QueryPreparedToSink(
        engine_options, prepared->index(), sub, pool_.get(),
        /*stats=*/nullptr, &run_sink);
    if (!eval_status.ok()) {
      // Engine failure or sink-driven cancellation mid-run: fulfill the
      // remaining claims with null so joiners re-evaluate instead of
      // hanging or inheriting our outcome.
      for (int64_t d = landed; d < claimed; ++d) {
        retire(d, nullptr);
      }
      if (eval_status.code() == StatusCode::kCancelled) {
        return Status::Cancelled("DangoronServer: stream cancelled mid-plan");
      }
      return eval_status;
    }
    deliver_ready(/*blocking=*/true);
    k += claimed;
  }
  if (plan_cancelled()) {
    return Status::Cancelled("DangoronServer: stream cancelled mid-plan");
  }
  return Status::Ok();
}

Result<ServeResult> DangoronServer::RunQuery(
    std::shared_ptr<const TimeSeriesMatrix> data, uint64_t fingerprint,
    const SlidingQuery& query) {
  ServeResult out;
  std::vector<WindowEdges> got;
  bool exact_family = true;
  const Status plan = RunWindowPlan(data, fingerprint, query,
                                    /*max_batch_windows=*/0,
                                    /*stream=*/nullptr, &got, &out,
                                    &exact_family);
  RecordQueryStats(out, /*streaming=*/false);
  RETURN_IF_ERROR(plan);

  // Assemble the response from the shared per-window edge sets, filtering
  // family-threshold sets down to the query's exact threshold.
  const int64_t n = data->num_series();
  CorrelationMatrixSeries series(query, n);
  for (int64_t k = 0; k < query.NumWindows(); ++k) {
    const std::vector<Edge>& edges = *got[static_cast<size_t>(k)];
    *series.MutableWindow(k) =
        exact_family ? edges : FilterEdges(edges, query);
  }
  out.series = std::move(series);
  return out;
}

void DangoronServer::RunStreamingQuery(
    std::shared_ptr<const TimeSeriesMatrix> data, uint64_t fingerprint,
    const SlidingQuery& query, const StreamingSubmitOptions& stream_options,
    std::shared_ptr<WindowStreamState> stream) {
  ServeResult out;
  std::vector<WindowEdges> got;
  Status status =
      RunWindowPlan(data, fingerprint, query, stream_options.max_batch_windows,
                    stream.get(), &got, &out, nullptr);
  RecordQueryStats(out, /*streaming=*/true);
  StreamingSummary summary;
  summary.prepared_from_cache = out.prepared_from_cache;
  summary.windows_from_cache = out.windows_from_cache;
  summary.windows_computed = out.windows_computed;
  summary.windows_joined = out.windows_joined;
  stream->Finish(std::move(status), summary);
}

void DangoronServer::RecordQueryStats(const ServeResult& out, bool streaming) {
  // Every submission counts, successful or not, and the window counters
  // reflect the work actually done — one accounting rule for both paths.
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.queries;
  if (streaming) {
    ++stats_.streaming_queries;
  }
  stats_.windows_computed += out.windows_computed;
  stats_.windows_from_cache += out.windows_from_cache;
  stats_.windows_joined += out.windows_joined;
}

DangoronServerStats DangoronServer::stats() const {
  DangoronServerStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
  }
  snapshot.sketch_cache = sketch_cache_.stats();
  snapshot.result_cache = result_cache_.stats();
  return snapshot;
}

}  // namespace dangoron
