#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <functional>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/dangoron_engine.h"
#include "sketch/basic_window_index.h"

namespace dangoron {

void FulfillWindowClaim(const WindowClaimPtr& claim, WindowEdges edges) {
  {
    MutexLock lock(claim->waker.m);
    claim->done = true;
    claim->edges = std::move(edges);
  }
  claim->waker.cv.NotifyAll();
}

WindowEdges WaitForWindowClaim(const WindowClaimPtr& claim,
                               WindowStreamState* stream, bool* cancelled,
                               const DeadlineToken& deadline,
                               bool* deadline_hit) {
  *cancelled = false;
  if (deadline_hit != nullptr) {
    *deadline_hit = false;
  }
  if (stream != nullptr) {
    // Alias the waker to the claim so the registration keeps it alive even
    // if the claimant retires the claim while we sleep.
    stream->AddCancelWaker(std::shared_ptr<CancelWaker>(claim, &claim->waker));
  }
  WindowEdges edges;
  {
    MutexLock lock(claim->waker.m);
    // The wait condition reads the stream's cancel flag under the waker's
    // lock; Cancel() notifies through that lock (see CancelWaker), so the
    // wait wakes on fulfillment *or* cancellation, whichever is first — and
    // a deadline bounds the sleep (no extra wake machinery: the foreign
    // claimant owes us nothing at our deadline). A WaitUntil timeout breaks
    // out; the classification below still prefers a fulfillment or
    // cancellation that raced in just ahead of it.
    while (!claim->done && !(stream != nullptr && stream->cancelled())) {
      if (!deadline.has_deadline()) {
        claim->waker.cv.Wait(claim->waker.m);
      } else if (claim->waker.cv.WaitUntil(claim->waker.m,
                                           deadline.deadline())) {
        break;
      }
    }
    if (claim->done) {
      edges = claim->edges;
    } else if (stream != nullptr && stream->cancelled()) {
      *cancelled = true;
    } else {
      // Neither fulfilled nor cancelled: the deadline bounded the wait.
      if (deadline_hit != nullptr) {
        *deadline_hit = true;
      }
    }
  }
  if (stream != nullptr) {
    stream->RemoveCancelWaker(&claim->waker);
  }
  return edges;
}

namespace {

// Bridges the exact engine's native window emission into a callback; the
// callback returns false to cancel the producing query.
class CallbackWindowSink final : public WindowSink {
 public:
  explicit CallbackWindowSink(
      std::function<bool(int64_t, std::vector<Edge>)> on_window)
      : on_window_(std::move(on_window)) {}

  bool OnWindow(int64_t window_index, std::vector<Edge> edges) override {
    return on_window_(window_index, std::move(edges));
  }

 private:
  std::function<bool(int64_t, std::vector<Edge>)> on_window_;
};

// The evaluation mode of the serving layer: exact incremental — a window's
// edge set must not depend on the query range it was computed for, or
// cross-query reuse would change results.
DangoronOptions ServingEngineOptions(int64_t basic_window) {
  DangoronOptions options;
  options.basic_window = basic_window;
  options.enable_jumping = false;
  options.horizontal_pruning = false;
  return options;
}

// Cache keys and the family machinery compare thresholds by bit pattern.
bool SameThresholdBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

// Seed of the exact-cost ns/cell estimate behind kAuto: deliberately
// pessimistic (the measured sweep runs well under 1 ns/cell at scale) so a
// fresh server facing a tight deadline picks the approx tier — the
// latency-safe error — until warm exact queries teach it the real rate.
constexpr double kExactCostSeedNsPerCell = 50.0;

// EWMA weight of a new warm-query ns/cell observation.
constexpr double kExactCostAlpha = 0.3;

// Bounded retry of transient prepare failures: attempts beyond the first,
// with jittered exponential backoff (1, 2, 4 ms nominal) capped by the
// request's remaining deadline.
constexpr int kPrepareMaxRetries = 3;

// A transient prepare failure worth retrying. ResourceExhausted is
// deliberately absent: backoff cannot free a byte budget, and the
// degradation path wants to see it promptly.
bool PrepareRetryable(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kInternal;
}

// Filters a family-threshold edge set down to `query`'s exact threshold.
// Sound because the family threshold is <= the query's, so the cached set
// is a superset whose values are threshold-independent (exact evaluation).
std::vector<Edge> FilterEdges(const std::vector<Edge>& edges,
                              const SlidingQuery& query) {
  std::vector<Edge> out;
  out.reserve(edges.size());
  for (const Edge& edge : edges) {
    if (query.IsEdge(edge.value)) {
      out.push_back(edge);
    }
  }
  return out;
}

}  // namespace

DangoronServer::DangoronServer(const DangoronServerOptions& options)
    : options_(options),
      sketch_cache_(options.sketch_cache_bytes),
      result_cache_(options.result_cache_bytes),
      admission_queue_(&sketch_cache_, options.admission_queue_limit),
      exact_cell_ns_(kExactCostSeedNsPerCell),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {
  // Insertions that evict sketches free budget a parked prepare may now
  // claim (the listener fires outside the cache lock — see LruByteCache).
  sketch_cache_.SetEvictionListener([this] {
    admission_queue_.NotifyReleased();
  });
}

DangoronServer::~DangoronServer() {
  // Cancel live streams, then join their producer threads: a producer
  // blocked on a consumer that will never drain wakes on Cancel, fulfills
  // its claims, finishes its stream, and exits.
  std::vector<ActiveStream> streams;
  {
    MutexLock lock(streams_mutex_);
    streams.swap(active_streams_);
  }
  for (ActiveStream& stream : streams) {
    if (std::shared_ptr<WindowStreamState> state = stream.state.lock()) {
      state->Cancel();
    }
    if (stream.producer.joinable()) {
      stream.producer.join();
    }
  }
  // Fail every parked (and future) admission wait: a queued prepare whose
  // budget will never free must not hold the pool drain below hostage.
  admission_queue_.Shutdown();
  // Drain before member teardown begins: in-flight query tasks schedule
  // ParallelFor helpers on the pool, which the pool's own destructor (it
  // runs with shutdown already flagged) would refuse. Wait() covers those
  // helpers too — a task registers them before it completes, so the
  // in-flight count stays nonzero until the whole query is done.
  pool_->Wait();
}

Status DangoronServer::AddDataset(
    const std::string& name, std::shared_ptr<const TimeSeriesMatrix> data) {
  if (name.empty()) {
    return Status::InvalidArgument("AddDataset: empty name");
  }
  if (data == nullptr || data->empty()) {
    return Status::InvalidArgument("AddDataset: empty dataset '", name, "'");
  }
  if (data->CountMissing() > 0) {
    return Status::FailedPrecondition(
        "AddDataset: dataset '", name,
        "' contains missing values; run InterpolateMissing first");
  }
  if (data->length() < options_.basic_window) {
    return Status::InvalidArgument(
        "AddDataset: dataset '", name, "' has length ", data->length(),
        ", shorter than one basic window of ", options_.basic_window);
  }
  RegisteredDataset registered;
  registered.fingerprint = data->ContentFingerprint();
  registered.data = std::move(data);
  MutexLock lock(datasets_mutex_);
  datasets_[name] = std::move(registered);
  return Status::Ok();
}

Status DangoronServer::AddDataset(const std::string& name,
                                  TimeSeriesMatrix data) {
  return AddDataset(name,
                    std::make_shared<const TimeSeriesMatrix>(std::move(data)));
}

Status DangoronServer::RemoveDataset(const std::string& name) {
  MutexLock lock(datasets_mutex_);
  if (datasets_.erase(name) == 0) {
    return Status::NotFound("RemoveDataset: unknown dataset '", name, "'");
  }
  return Status::Ok();
}

Result<uint64_t> DangoronServer::DatasetFingerprint(
    const std::string& name) const {
  MutexLock lock(datasets_mutex_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("DatasetFingerprint: unknown dataset '", name,
                            "'");
  }
  return it->second.fingerprint;
}

Result<int64_t> DangoronServer::DatasetLength(const std::string& name) const {
  MutexLock lock(datasets_mutex_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("DatasetLength: unknown dataset '", name, "'");
  }
  return it->second.data->length();
}

bool DangoronServer::HasPreparedSketch(const std::string& dataset) const {
  uint64_t fingerprint = 0;
  {
    MutexLock lock(datasets_mutex_);
    auto it = datasets_.find(dataset);
    if (it == datasets_.end()) {
      return false;
    }
    fingerprint = it->second.fingerprint;
  }
  return sketch_cache_.Contains(
      SketchCacheKey{fingerprint, options_.basic_window});
}

double DangoronServer::CanonicalThreshold(double threshold,
                                          bool absolute) const {
  const int64_t steps = options_.threshold_family_steps;
  if (steps <= 0) {
    return threshold;
  }
  // Snap down to the grid. The epsilon absorbs products like 0.7 * 20 =
  // 13.999999999999998 landing a hair under their grid point; the guard
  // keeps the invariant canonical <= threshold when the epsilon overshoots
  // (a threshold just *below* a grid point must not snap up past it —
  // filtering only removes edges, so the cached set has to be a superset).
  const double steps_d = static_cast<double>(steps);
  double grid = std::floor(threshold * steps_d + 1e-7);
  double canonical = grid / steps_d;
  if (canonical > threshold) {
    canonical = (grid - 1.0) / steps_d;
  }
  // Never snap across a density cliff. At the accept-everything threshold
  // (0 in absolute mode, -1 otherwise) a family window is a full
  // n*(n-1)/2 clique; and in non-absolute mode, snapping a small positive
  // threshold to 0 caches the c >= 0 half-clique (~half of all pairs on
  // uncorrelated data) to answer a query that keeps almost none of it.
  // Below the bottom useful grid step, fall back to exact-match keys.
  const double accept_all = absolute ? 0.0 : -1.0;
  if (canonical <= accept_all && threshold > accept_all) {
    return threshold;
  }
  if (!absolute && threshold > 0.0 && canonical <= 0.0) {
    return threshold;
  }
  return std::max(canonical, accept_all);
}

Result<DangoronServer::RequestContext> DangoronServer::ResolveRequest(
    const QueryRequest& request, const char* api) const {
  if (Status valid = request.Validate(); !valid.ok()) {
    return Status(valid.code(), std::string(api) + ": " + valid.message());
  }
  RequestContext ctx;
  {
    MutexLock lock(datasets_mutex_);
    auto it = datasets_.find(request.dataset);
    if (it == datasets_.end()) {
      return Status::NotFound(api, ": unknown dataset '", request.dataset,
                              "'");
    }
    ctx.data = it->second.data;
    ctx.fingerprint = it->second.fingerprint;
  }
  ctx.query = request.query;
  ctx.tier = request.options.tier.value_or(options_.default_tier);
  ctx.admission = request.options.admission.value_or(options_.admission);
  ctx.degrade = request.options.degrade.value_or(options_.degrade);
  ctx.deadline = DeadlineToken(RequestDeadline(request.options));
  return ctx;
}

ServeTier DangoronServer::ResolveTier(const RequestContext& ctx) const {
  if (ctx.tier != ServeTier::kAuto) {
    return ctx.tier;
  }
  if (!ctx.deadline.has_deadline()) {
    return ServeTier::kExact;  // no latency pressure: reuse-friendly exact
  }
  if (!ctx.query.Validate(ctx.data->length()).ok()) {
    // An invalid query must not reach the cost estimate: a bogus range
    // (e.g. end = 2^50) would make its per-window probe loop effectively
    // unbounded. Route to exact — the plan rejects it with the real error.
    return ServeTier::kExact;
  }
  return EstimateExactCostMs(ctx) > ctx.deadline.remaining_ms()
             ? ServeTier::kApprox
             : ServeTier::kExact;
}

double DangoronServer::EstimateExactCostMs(const RequestContext& ctx) const {
  const int64_t num_series = ctx.data->num_series();
  const SlidingQuery& query = ctx.query;
  // Discount windows the result cache already holds: a warm range is a
  // near-free exact answer and must not be routed to approx just because
  // the full recompute would miss the deadline. Contains() probes are
  // read-only (no recency bump), one hashtable lookup per window —
  // negligible next to either tier's evaluation. An unaligned query gets
  // no discount (it is about to fail validation anyway).
  const int64_t b = options_.basic_window;
  int64_t windows_to_price = query.NumWindows();
  if (query.start % b == 0 && query.window % b == 0 && query.step % b == 0 &&
      windows_to_price > 0) {
    const double canonical =
        CanonicalThreshold(query.threshold, query.absolute);
    int64_t cached = 0;
    for (int64_t k = 0; k < query.NumWindows(); ++k) {
      if (result_cache_.Contains(
              QueryWindowKey(ctx.fingerprint, b, query, k, canonical))) {
        ++cached;
      }
    }
    windows_to_price -= cached;
  }
  // A pair-range restriction (sharding) shrinks the evaluated slice; price
  // what this shard will actually sweep, not the whole clique.
  const auto [pair_lo, pair_hi] =
      query.PairRange(num_series * (num_series - 1) / 2);
  const double pairs = static_cast<double>(pair_hi - pair_lo);
  const double cells = pairs * static_cast<double>(windows_to_price);
  double cell_ns;
  {
    MutexLock lock(stats_mutex_);
    cell_ns = exact_cell_ns_;
  }
  return cells * cell_ns / 1e6;
}

int64_t DangoronServer::EstimatePrepareBytes(
    const TimeSeriesMatrix& data) const {
  BasicWindowIndexOptions index_options;
  index_options.basic_window = options_.basic_window;
  index_options.build_pair_sketches = true;
  return BasicWindowIndex::EstimateMemoryBytes(data.num_series(),
                                               data.length(), index_options) +
         static_cast<int64_t>(data.values().size() * sizeof(double));
}

Status DangoronServer::CheckQueryAligned(const SlidingQuery& query) const {
  const int64_t b = options_.basic_window;
  if (query.start % b != 0 || query.window % b != 0 || query.step % b != 0) {
    return Status::InvalidArgument(
        "DangoronServer: query start/window/step must be multiples of the "
        "server basic window ",
        b, " (got start=", query.start, " window=", query.window,
        " step=", query.step, ")");
  }
  return Status::Ok();
}

Status DangoronServer::CheckIndexCoverage(const SlidingQuery& query,
                                          const BasicWindowIndex& index) const {
  const int64_t b = options_.basic_window;
  const int64_t last_needed_bw =
      query.start / b + (query.NumWindows() - 1) * (query.step / b) +
      query.window / b;
  if (last_needed_bw > index.num_basic_windows()) {
    return Status::OutOfRange(
        "DangoronServer: query needs basic windows up to ", last_needed_bw,
        " but only ", index.num_basic_windows(), " are indexed");
  }
  return Status::Ok();
}

std::future<Result<ServeResult>> DangoronServer::Submit(
    const QueryRequest& request) {
  Result<RequestContext> ctx = ResolveRequest(request, "Submit");
  if (!ctx.ok()) {
    RecordQueryStats(ServeResult{}, /*streaming=*/false);
    std::promise<Result<ServeResult>> failed;
    failed.set_value(ctx.status());
    return failed.get_future();
  }
  return pool_->Async(
      [this, ctx = std::move(*ctx)]() -> Result<ServeResult> {
        return RunQuery(ctx);
      });
}

std::future<Result<ServeResult>> DangoronServer::Submit(
    const std::string& dataset, const SlidingQuery& query) {
  return Submit(QueryRequest{dataset, query, ServeOptions{}});
}

std::unique_ptr<WindowStream> DangoronServer::SubmitStreaming(
    const QueryRequest& request) {
  auto state = std::make_shared<WindowStreamState>(
      request.options.queue_capacity);
  Result<RequestContext> resolved = ResolveRequest(request, "SubmitStreaming");
  if (!resolved.ok()) {
    RecordQueryStats(ServeResult{}, /*streaming=*/true);
    state->Finish(resolved.status(), StreamingSummary{});
    return std::make_unique<WindowStream>(std::move(state));
  }
  // The producer gets a dedicated thread, not a pool task: delivery blocks
  // on the consumer by design (backpressure), and blocking must never pin a
  // compute thread (a 1-thread pool would otherwise wedge under
  // submit-stream, query, drain). Pair-block evaluation inside still runs
  // on the shared pool. Threads are admission-capped and reaped here.
  {
    MutexLock lock(streams_mutex_);
    // Reap producers whose stream already finished (join is then
    // instantaneous), and keep the live ones. A plain loop, not erase_if:
    // joining the thread is a side effect the remove_if predicate contract
    // does not allow.
    std::vector<ActiveStream> live;
    live.reserve(active_streams_.size() + 1);
    for (ActiveStream& active : active_streams_) {
      const std::shared_ptr<WindowStreamState> stream_state =
          active.state.lock();
      if (stream_state != nullptr && !stream_state->finished()) {
        live.push_back(std::move(active));
      } else if (active.producer.joinable()) {
        active.producer.join();
      }
    }
    active_streams_ = std::move(live);
    if (static_cast<int64_t>(active_streams_.size()) >=
        options_.max_concurrent_streams) {
      RecordQueryStats(ServeResult{}, /*streaming=*/true);
      state->Finish(
          Status::ResourceExhausted(
              "SubmitStreaming: ", active_streams_.size(),
              " streams already live (max_concurrent_streams = ",
              options_.max_concurrent_streams,
              "); drain or cancel existing streams first"),
          StreamingSummary{});
      return std::make_unique<WindowStream>(std::move(state));
    }
    std::thread producer([this, ctx = std::move(*resolved),
                          max_batch = request.options.max_batch_windows,
                          state]() mutable {
      RunStreamingQuery(ctx, max_batch, std::move(state));
    });
    active_streams_.push_back(ActiveStream{std::move(producer), state});
  }
  return std::make_unique<WindowStream>(std::move(state));
}

std::unique_ptr<WindowStream> DangoronServer::SubmitStreaming(
    const std::string& dataset, const SlidingQuery& query,
    const StreamingSubmitOptions& stream_options) {
  QueryRequest request{dataset, query, ServeOptions{}};
  request.options.queue_capacity = stream_options.queue_capacity;
  request.options.max_batch_windows = stream_options.max_batch_windows;
  return SubmitStreaming(request);
}

Result<ServeResult> DangoronServer::Query(const QueryRequest& request) {
  return Submit(request).get();
}

Result<ServeResult> DangoronServer::Query(const std::string& dataset,
                                          const SlidingQuery& query) {
  return Submit(dataset, query).get();
}

Result<std::shared_ptr<const PreparedDataset>> DangoronServer::GetOrPrepare(
    std::shared_ptr<const TimeSeriesMatrix> data, uint64_t fingerprint,
    AdmissionPolicy admission, const DeadlineToken& deadline,
    WindowStreamState* stream, bool* shared) {
  const SketchCacheKey key{fingerprint, options_.basic_window};
  if (auto cached = sketch_cache_.Get(key)) {
    *shared = true;
    MutexLock lock(stats_mutex_);
    ++stats_.prepares_shared;
    return cached;
  }

  // Join an already-admitted in-flight build before any admission check:
  // joining costs no budget, so it must never park or refuse.
  {
    std::shared_future<std::shared_ptr<const PreparedDataset>> join;
    {
      MutexLock lock(inflight_mutex_);
      auto it = inflight_prepares_.find(key);
      if (it != inflight_prepares_.end()) {
        join = it->second;
      }
    }
    if (join.valid()) {
      if (auto prepared = join.get()) {
        *shared = true;
        MutexLock lock(stats_mutex_);
        ++stats_.prepares_shared;
        return prepared;
      }
      // The producer's build failed; fall through to admission + own build.
    }
  }

  // Admission control. An index that can never fit the budget would be
  // built only to be evicted on insertion (and would flush every warm
  // sketch's LRU position on its way through the build's memory pressure);
  // one that fits the budget but not the currently *free* budget would
  // thrash warm sketches pinned by in-flight queries. The refuse policy
  // rejects the former up front from the closed-form estimate (its
  // historical behavior, gated on refuse_oversized_prepares); the queue
  // policy reserves budget — reclaiming idle LRU entries, else parking
  // until evictions or released handles free enough, the deadline passes,
  // or the stream cancels.
  const int64_t estimate = EstimatePrepareBytes(*data);
  bool queued_reservation = false;
  if (admission == AdmissionPolicy::kQueue) {
    std::shared_ptr<const PreparedDataset> landed;
    const Status admitted = admission_queue_.Admit(
        estimate, key, deadline.deadline(), stream,
        [this] {
          // At park time, not on return: stats must show a request that is
          // *currently* parked.
          MutexLock lock(stats_mutex_);
          ++stats_.prepares_queued;
        },
        &landed);
    if (!admitted.ok()) {
      MutexLock lock(stats_mutex_);
      if (admitted.code() == StatusCode::kResourceExhausted) {
        ++stats_.prepares_refused;
      } else if (admitted.code() == StatusCode::kDeadlineExceeded) {
        ++stats_.deadline_exceeded;
      }
      return admitted;
    }
    if (landed != nullptr) {
      // A concurrent build published this sketch while we waited; the
      // queue admitted through the cache with no reservation taken.
      *shared = true;
      MutexLock lock(stats_mutex_);
      ++stats_.prepares_shared;
      return landed;
    }
    queued_reservation = true;
  } else if (options_.refuse_oversized_prepares &&
             estimate > sketch_cache_.byte_budget()) {
    {
      MutexLock lock(stats_mutex_);
      ++stats_.prepares_refused;
    }
    return Status::ResourceExhausted(
        "DangoronServer: prepare refused by admission policy — estimated ",
        estimate, " bytes exceeds the sketch-cache budget of ",
        sketch_cache_.byte_budget(), " bytes");
  }
  // From here every return path under a queued admission must Release the
  // reservation: once the built entry is Put (its bytes then count against
  // the cache), the build failed, or we joined another build after all.
  std::promise<std::shared_ptr<const PreparedDataset>> promise;
  std::shared_future<std::shared_ptr<const PreparedDataset>> join;
  bool producer = false;
  {
    MutexLock lock(inflight_mutex_);
    auto it = inflight_prepares_.find(key);
    if (it != inflight_prepares_.end()) {
      join = it->second;
    } else {
      producer = true;
      inflight_prepares_.emplace(key, promise.get_future().share());
    }
  }

  if (!producer) {
    // Another query is building this sketch right now; its task fulfills
    // the future before it waits on anything, so this cannot cycle.
    if (auto prepared = join.get()) {
      if (queued_reservation) {
        admission_queue_.Release(estimate);  // joined: no budget consumed
      }
      *shared = true;
      MutexLock lock(stats_mutex_);
      ++stats_.prepares_shared;
      return prepared;
    }
    // The producer's build failed; fall through and pay our own build so
    // one failure does not poison every waiter with an opaque error.
  }

  // One build attempt: the failpoint fires first so injected faults take
  // the same retry/failure path a real build fault would.
  auto build_once = [&]() -> Result<std::shared_ptr<const PreparedDataset>> {
    DANGORON_FAILPOINT("serve.prepare");
    return PreparedDataset::Create(data, options_.basic_window, pool_.get(),
                                   fingerprint);
  };
  auto prepared_or = build_once();
  int retries = 0;
  // Deterministic jitter: no wall-clock seeding (a per-process counter
  // varies the stream across requests), and the nominal 1/2/4 ms backoff
  // is scaled by [0.5, 1.5) then clipped to the remaining deadline.
  static std::atomic<uint64_t> retry_seq{0};
  Rng jitter(fingerprint ^ (retry_seq.fetch_add(1) + 0x9e3779b97f4a7c15ull));
  while (!prepared_or.ok() && PrepareRetryable(prepared_or.status()) &&
         retries < kPrepareMaxRetries && !deadline.expired() &&
         (stream == nullptr || !stream->cancelled())) {
    ++retries;
    double backoff_ms = static_cast<double>(int64_t{1} << (retries - 1)) *
                        (0.5 + jitter.NextDouble());
    if (deadline.has_deadline()) {
      backoff_ms = std::min(backoff_ms, std::max(0.0, deadline.remaining_ms()));
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    prepared_or = build_once();
  }
  if (retries > 0) {
    MutexLock lock(stats_mutex_);
    stats_.prepare_retries += retries;
  }
  std::shared_ptr<const PreparedDataset> prepared =
      prepared_or.ok() ? *prepared_or : nullptr;
  if (producer) {
    if (prepared != nullptr) {
      // Publish to the cache before retiring the in-flight entry so a new
      // query always finds one of the two.
      sketch_cache_.Put(key, prepared, prepared->MemoryBytes());
    }
    {
      MutexLock lock(inflight_mutex_);
      inflight_prepares_.erase(key);
    }
    promise.set_value(prepared);
  } else if (prepared != nullptr) {
    sketch_cache_.Put(key, prepared, prepared->MemoryBytes());
  }
  if (queued_reservation) {
    // The Put above converted the reservation into cache-accounted bytes
    // (or the build failed); either way the reservation retires here.
    admission_queue_.Release(estimate);
  }
  if (!prepared_or.ok()) {
    return prepared_or.status();
  }
  *shared = false;
  {
    MutexLock lock(stats_mutex_);
    ++stats_.prepares_built;
  }
  return prepared;
}

Status DangoronServer::RunWindowPlan(
    const RequestContext& ctx, int64_t max_batch_windows,
    WindowStreamState* stream, std::vector<WindowEdges>* got_out,
    ServeResult* out, bool* exact_family_out, double* prepare_seconds_out,
    int64_t* next_deliver_out) {
  if (next_deliver_out != nullptr) {
    *next_deliver_out = 0;
  }
  const std::shared_ptr<const TimeSeriesMatrix>& data = ctx.data;
  const uint64_t fingerprint = ctx.fingerprint;
  const SlidingQuery& query = ctx.query;
  RETURN_IF_ERROR(query.Validate(data->length()));
  const int64_t b = options_.basic_window;
  RETURN_IF_ERROR(CheckQueryAligned(query));

  Stopwatch prepare_timer;
  ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> prepared,
                   GetOrPrepare(data, fingerprint, ctx.admission,
                                ctx.deadline, stream,
                                &out->prepared_from_cache));
  if (prepare_seconds_out != nullptr) {
    *prepare_seconds_out = prepare_timer.ElapsedSeconds();
  }
  RETURN_IF_ERROR(CheckIndexCoverage(query, prepared->index()));

  const int64_t num_windows = query.NumWindows();

  // Threshold-family canonicalization: evaluate/cache at the family
  // threshold, filter back up to the query's on delivery/assembly.
  const double canonical =
      CanonicalThreshold(query.threshold, query.absolute);
  const bool exact_family = SameThresholdBits(canonical, query.threshold);
  if (exact_family_out != nullptr) {
    *exact_family_out = exact_family;
  }
  SlidingQuery eval = query;
  eval.threshold = canonical;

  auto key_for = [&](int64_t k) {
    return QueryWindowKey(fingerprint, b, query, k, canonical);
  };

  std::vector<WindowEdges>& got = *got_out;
  got.assign(static_cast<size_t>(num_windows), nullptr);

  // In-order streaming delivery of the contiguous finished prefix.
  // Filtering from the family threshold to the query's happens here, at the
  // delivery edge — the cache keeps the family-threshold superset. The
  // blocking form waits out backpressure and therefore may only run while
  // this task holds no unfulfilled claims; the non-blocking form runs from
  // inside the evaluation sink (claims outstanding) and simply stops at a
  // full queue, leaving the rest for the next blocking edge.
  int64_t next_deliver = 0;
  bool delivery_cancelled = false;
  // Deadline blown while blocked delivering to a slow consumer (the only
  // blocking edge a deadline can interrupt besides claim joins).
  bool deadline_blown = false;
  // Memo of the head window's family-to-query filtered copy: a full queue
  // fails TryPush repeatedly on the same head window, and refiltering it on
  // every attempt would be O(windows landed) redundant copies.
  int64_t filtered_index = -1;
  WindowEdges filtered_edges;
  auto deliver_ready = [&](bool blocking) {
    if (stream == nullptr || delivery_cancelled) {
      return;
    }
    while (next_deliver < num_windows &&
           got[static_cast<size_t>(next_deliver)] != nullptr) {
      WindowEdges edges = got[static_cast<size_t>(next_deliver)];
      if (!exact_family) {
        if (filtered_index != next_deliver) {
          filtered_edges = std::make_shared<const std::vector<Edge>>(
              FilterEdges(*edges, query));
          filtered_index = next_deliver;
        }
        edges = filtered_edges;
      }
      StreamedWindow window{next_deliver, std::move(edges)};
      if (blocking) {
        // Deadline-bounded backpressure: the terminal DeadlineExceeded is
        // itself a delivery the consumer is waiting on, so the producer
        // must not block past the abort point (PushUntil with
        // time_point::max() is plain Push).
        switch (stream->PushUntil(std::move(window),
                                  ctx.deadline.deadline())) {
          case PushResult::kPushed:
            break;
          case PushResult::kCancelled:
            delivery_cancelled = true;
            return;
          case PushResult::kDeadlineExceeded:
            deadline_blown = true;
            return;
        }
      } else if (!stream->TryPush(std::move(window))) {
        // TryPush also fails on a full queue, which is not terminal.
        if (stream->cancelled()) {
          delivery_cancelled = true;
        }
        return;
      }
      // Streaming never assembles a series, so drop the plan's reference
      // once delivered: peak memory is the queue plus the in-flight run,
      // not the whole result (the cache keeps its own budgeted reference).
      got[static_cast<size_t>(next_deliver)] = nullptr;
      ++next_deliver;
    }
  };
  auto plan_cancelled = [&]() {
    return delivery_cancelled || (stream != nullptr && stream->cancelled());
  };
  // Every return funnels through here so the caller learns the resume
  // point: for a streaming plan the first undelivered window, for a
  // materialized one the windows retained in `got` speak for themselves.
  auto finish_plan = [&](Status status) {
    if (next_deliver_out != nullptr) {
      *next_deliver_out = next_deliver;
    }
    return status;
  };
  // Hard mid-run deadline abort: the only site that counts a deadline as
  // "fired mid-evaluation" (pre-start and admission checks count plain
  // deadline_exceeded elsewhere). Every window already delivered stayed
  // delivered, every window already computed stayed cached — the abort
  // loses only the future.
  auto deadline_abort = [&](const char* where) {
    {
      MutexLock lock(stats_mutex_);
      ++stats_.deadline_exceeded;
      ++stats_.deadline_aborted_mid_run;
    }
    return Status::DeadlineExceeded("DangoronServer: deadline expired ",
                                    where, " — completed ", next_deliver,
                                    " of ", num_windows, " windows");
  };

  const DangoronOptions engine_options = ServingEngineOptions(b);

  // Walk the windows in order, resolving each from the cache, a concurrent
  // query's in-flight claim, or our own evaluation. Claims are taken *per
  // run*, immediately before evaluating, and fulfilled (cache Put + claim
  // wake) window by window as the exact engine's window-major sweep emits —
  // so this task never holds an unfulfilled claim across anything that
  // blocks (a join wait, or a delivery push stuck on a slow stream
  // consumer; in-run delivery is non-blocking TryPush). That is the
  // no-deadlock invariant of the dedup protocol: joiners wait only on
  // claims whose evaluation is actively running — and at window cadence,
  // since a claim is fulfilled the moment its window lands, not when the
  // whole run does. The engine's native emission is also what replaced the
  // old chop-into-`max_batch_windows`-sub-queries workaround: consumers see
  // the first window after one window's sweep, and each window is published
  // to the result cache as it lands, so even a cancelled plan leaves a
  // reusable prefix.
  int64_t k = 0;
  while (k < num_windows) {
    if (plan_cancelled()) {
      return finish_plan(
          Status::Cancelled("DangoronServer: stream cancelled mid-plan"));
    }
    // Per-window deadline check — no claims are held here, so aborting is
    // always safe; claimed-run evaluation re-checks at band cadence below.
    if (deadline_blown) {
      return finish_plan(deadline_abort("delivering under backpressure"));
    }
    if (ctx.deadline.expired()) {
      return finish_plan(deadline_abort("mid-plan"));
    }
    if (k < next_deliver || got[static_cast<size_t>(k)] != nullptr) {
      ++k;  // already resolved (and possibly delivered + released)
      continue;
    }

    // Resolve window k under the dedup lock; if it is free, claim the
    // maximal contiguous free run from k (capped at max_batch_windows).
    WindowClaimPtr join;
    std::vector<WindowClaimPtr> claims;
    {
      MutexLock lock(inflight_mutex_);
      if (auto cached = result_cache_.Get(key_for(k))) {
        got[static_cast<size_t>(k)] = std::move(cached);
        ++out->windows_from_cache;
      } else if (auto it = inflight_windows_.find(key_for(k));
                 it != inflight_windows_.end()) {
        join = it->second;
      } else {
        const int64_t cap =
            max_batch_windows > 0 ? max_batch_windows : num_windows;
        int64_t claimed = 1;
        while (claimed < cap && k + claimed < num_windows) {
          const WindowKey key = key_for(k + claimed);
          if (auto cached = result_cache_.Get(key)) {
            // Stash the probe hit so the main loop never re-reads it.
            got[static_cast<size_t>(k + claimed)] = std::move(cached);
            ++out->windows_from_cache;
            break;
          }
          if (inflight_windows_.find(key) != inflight_windows_.end()) {
            break;
          }
          ++claimed;
        }
        claims.reserve(static_cast<size_t>(claimed));
        for (int64_t d = 0; d < claimed; ++d) {
          claims.push_back(std::make_shared<WindowClaim>());
          inflight_windows_.emplace(key_for(k + d), claims.back());
        }
      }
    }

    if (got[static_cast<size_t>(k)] != nullptr) {
      deliver_ready(/*blocking=*/true);
      ++k;
      continue;
    }

    if (join != nullptr) {
      // Wait holding no claims — and cancellably: a streaming plan wakes on
      // its own stream's Cancel instead of waiting out the foreign
      // evaluation. A null result means the claimant failed (or was
      // cancelled) after claiming; evaluate the window ourselves rather
      // than inheriting its error.
      bool join_cancelled = false;
      bool join_deadline = false;
      WindowEdges edges = WaitForWindowClaim(join, stream, &join_cancelled,
                                             ctx.deadline, &join_deadline);
      if (join_cancelled) {
        return finish_plan(Status::Cancelled(
            "DangoronServer: stream cancelled while joining a claimed "
            "window"));
      }
      if (join_deadline) {
        return finish_plan(deadline_abort("joining a claimed window"));
      }
      if (edges == nullptr) {
        SlidingQuery sub = eval;
        sub.start = query.start + k * query.step;
        sub.end = sub.start + query.window;
        auto single_or = DangoronEngine::QueryPrepared(
            engine_options, prepared->index(), sub, pool_.get(), nullptr);
        if (!single_or.ok()) {
          return finish_plan(single_or.status());
        }
        CorrelationMatrixSeries single = std::move(*single_or);
        edges = std::make_shared<std::vector<Edge>>(
            std::move(*single.MutableWindow(0)));
        result_cache_.Put(key_for(k), edges, WindowEdgesBytes(*edges));
        ++out->windows_computed;
      } else {
        ++out->windows_joined;
      }
      got[static_cast<size_t>(k)] = std::move(edges);
      deliver_ready(/*blocking=*/true);
      ++k;
      continue;
    }

    // Evaluate the claimed run [k, k + claims.size()) in one engine pass,
    // riding the exact engine's native window-major emission: each window
    // is cached, its claim fulfilled, and delivery attempted the moment
    // the engine emits it.
    const int64_t claimed = static_cast<int64_t>(claims.size());
    auto retire = [&](int64_t d, WindowEdges edges) {
      {
        MutexLock lock(inflight_mutex_);
        inflight_windows_.erase(key_for(k + d));
      }
      FulfillWindowClaim(claims[static_cast<size_t>(d)], std::move(edges));
    };
    int64_t landed = 0;
    bool deadline_hit_mid_run = false;
    CallbackWindowSink run_sink([&](int64_t d, std::vector<Edge> raw) {
      auto edges = std::make_shared<std::vector<Edge>>(std::move(raw));
      if (Status put_fault =
              DANGORON_FAILPOINT_STATUS("serve.window_cache.put");
          put_fault.ok()) {
        result_cache_.Put(key_for(k + d), edges, WindowEdgesBytes(*edges));
      }
      // An injected Put failure skips only the publication: the claim is
      // still retired with real edges, so joiners and this plan stay
      // correct — the window is merely not reusable by later queries.
      retire(d, edges);
      got[static_cast<size_t>(k + d)] = std::move(edges);
      ++out->windows_computed;
      ++landed;
      deliver_ready(/*blocking=*/false);
      // The engine emits at band cadence, so this is the hard deadline's
      // mid-sweep granularity: at most ~one band of work past the deadline.
      if (ctx.deadline.expired()) {
        deadline_hit_mid_run = true;
        return false;
      }
      return !plan_cancelled();
    });
    SlidingQuery sub = eval;
    sub.start = query.start + k * query.step;
    sub.end = sub.start + (claimed - 1) * query.step + query.window;
    const Status eval_status = DangoronEngine::QueryPreparedToSink(
        engine_options, prepared->index(), sub, pool_.get(),
        /*stats=*/nullptr, &run_sink);
    if (!eval_status.ok()) {
      // Engine failure, sink-driven cancellation, or deadline abort
      // mid-run: fulfill the remaining claims with null so joiners
      // re-evaluate instead of hanging or inheriting our outcome.
      for (int64_t d = landed; d < claimed; ++d) {
        retire(d, nullptr);
      }
      if (deadline_hit_mid_run) {
        return finish_plan(deadline_abort("mid-sweep"));
      }
      if (eval_status.code() == StatusCode::kCancelled) {
        return finish_plan(
            Status::Cancelled("DangoronServer: stream cancelled mid-plan"));
      }
      return finish_plan(eval_status);
    }
    deliver_ready(/*blocking=*/true);
    k += claimed;
  }
  if (deadline_blown) {
    return finish_plan(deadline_abort("delivering under backpressure"));
  }
  if (plan_cancelled()) {
    return finish_plan(
        Status::Cancelled("DangoronServer: stream cancelled mid-plan"));
  }
  return finish_plan(Status::Ok());
}

Status DangoronServer::RunApproxPlan(const RequestContext& ctx,
                                     WindowStreamState* stream,
                                     ServeResult* out,
                                     CorrelationMatrixSeries* series_out,
                                     int64_t first_window) {
  const SlidingQuery& full_query = ctx.query;
  RETURN_IF_ERROR(full_query.Validate(ctx.data->length()));
  const int64_t b = options_.basic_window;
  RETURN_IF_ERROR(CheckQueryAligned(full_query));
  // Degradation continuation: evaluate only the window suffix from
  // `first_window`, delivering under the original indices — the exact plan
  // already delivered [0, first_window). Streaming only: a materialized
  // degrade reruns the whole range (its exact prefix was retained, not
  // delivered, and jumping is range-dependent anyway).
  SlidingQuery query = full_query;
  if (first_window > 0) {
    if (stream == nullptr) {
      return Status::Internal(
          "RunApproxPlan: window-suffix continuation requires a stream");
    }
    if (first_window >= full_query.NumWindows()) {
      return Status::Ok();  // everything already delivered
    }
    query.start = full_query.start + first_window * full_query.step;
  }

  // The approx tier shares the prepared sketch with the exact tier — one
  // index serves both — but from here on it never touches the
  // window-result cache: no Get (the jump pattern must not depend on what
  // exact queries happened to cache), no Put (a jumped window's edge set
  // depends on this query's range; publishing it would poison exact
  // reuse), and no claims (nothing here is joinable).
  ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> prepared,
                   GetOrPrepare(ctx.data, ctx.fingerprint, ctx.admission,
                                ctx.deadline, stream,
                                &out->prepared_from_cache));
  RETURN_IF_ERROR(CheckIndexCoverage(query, prepared->index()));
  const int64_t num_windows = query.NumWindows();

  DangoronOptions engine_options = ServingEngineOptions(b);
  engine_options.enable_jumping = true;  // the tier's whole point

  EngineStats engine_stats;
  Status status;
  if (stream == nullptr) {
    CollectingWindowSink sink;
    status = DangoronEngine::QueryPreparedToSink(
        engine_options, prepared->index(), query, pool_.get(), &engine_stats,
        &sink);
    if (status.ok()) {
      *series_out = sink.TakeSeries();
      out->windows_computed = num_windows;
    }
  } else {
    // Blocking delivery is safe here: this path holds no window claims, so
    // a slow consumer stalls only its own producer thread — but the
    // request's deadline still bounds it (PushUntil), and each emitted
    // window re-checks the clock: the approx tier enforces the hard
    // deadline at window cadence.
    bool deadline_hit = false;
    CallbackWindowSink sink([&](int64_t k, std::vector<Edge> edges) {
      auto shared_edges =
          std::make_shared<std::vector<Edge>>(std::move(edges));
      switch (stream->PushUntil(
          StreamedWindow{first_window + k, std::move(shared_edges)},
          ctx.deadline.deadline())) {
        case PushResult::kPushed:
          break;
        case PushResult::kCancelled:
          return false;
        case PushResult::kDeadlineExceeded:
          deadline_hit = true;
          return false;
      }
      ++out->windows_computed;
      if (ctx.deadline.expired()) {
        deadline_hit = true;
        return false;
      }
      return true;
    });
    status = DangoronEngine::QueryPreparedToSink(
        engine_options, prepared->index(), query, pool_.get(), &engine_stats,
        &sink);
    if (deadline_hit) {
      {
        MutexLock lock(stats_mutex_);
        ++stats_.deadline_exceeded;
        ++stats_.deadline_aborted_mid_run;
      }
      out->cells_jumped = engine_stats.cells_jumped;
      out->jumps = engine_stats.jumps;
      return Status::DeadlineExceeded(
          "DangoronServer: deadline expired mid-approx-plan — delivered ",
          out->windows_computed, " of ",
          full_query.NumWindows() - first_window, " windows");
    }
  }
  out->cells_jumped = engine_stats.cells_jumped;
  out->jumps = engine_stats.jumps;
  if (status.code() == StatusCode::kCancelled) {
    return Status::Cancelled(
        "DangoronServer: stream cancelled mid-approx-plan");
  }
  return status;
}

Result<ServeResult> DangoronServer::RunQuery(const RequestContext& ctx) {
  if (ctx.deadline.expired()) {
    // Attribute the failure to the tier that would have served it, so
    // per-tier deadline accounting stays truthful.
    ServeResult failed;
    failed.tier_used = ResolveTier(ctx);
    RecordQueryStats(failed, /*streaming=*/false);
    MutexLock lock(stats_mutex_);
    ++stats_.deadline_exceeded;
    return Status::DeadlineExceeded(
        "DangoronServer: request deadline passed before the query started");
  }

  // Graceful degradation, pre-run leg: an explicitly exact request whose
  // deadline the exact cost estimate already misses is served approx up
  // front under degrade=auto — a late exact answer is worse than an
  // on-time approximate one (kAuto's own estimate-driven approx choice is
  // selection, not degradation, and is not flagged).
  const bool degrade_estimate =
      ctx.tier == ServeTier::kExact &&
      ctx.degrade == DegradePolicy::kAuto && ctx.deadline.has_deadline() &&
      EstimateExactCostMs(ctx) > ctx.deadline.remaining_ms();

  if (degrade_estimate || ResolveTier(ctx) == ServeTier::kApprox) {
    ServeResult out;
    out.tier_used = ServeTier::kApprox;
    out.degraded = degrade_estimate;
    CorrelationMatrixSeries series;
    const Status plan = RunApproxPlan(ctx, /*stream=*/nullptr, &out, &series);
    admission_queue_.NotifyReleased();  // the prepared handle is released
    RecordQueryStats(out, /*streaming=*/false);
    RETURN_IF_ERROR(plan);
    out.series = std::move(series);
    return out;
  }

  ServeResult out;
  std::vector<WindowEdges> got;
  bool exact_family = true;
  double prepare_seconds = 0.0;
  Stopwatch plan_timer;
  const Status plan = RunWindowPlan(ctx, /*max_batch_windows=*/0,
                                    /*stream=*/nullptr, &got, &out,
                                    &exact_family, &prepare_seconds);
  const double plan_ns =
      (plan_timer.ElapsedSeconds() - prepare_seconds) * 1e9;
  admission_queue_.NotifyReleased();  // the prepared handle is released
  RecordQueryStats(out, /*streaming=*/false);
  // Teach the kAuto cost model from warm queries that actually evaluated
  // everything themselves: streaming queries fold consumer pace into the
  // elapsed time, and a query that joined or cache-read windows folds
  // foreign evaluation waits into plan_ns while dividing by only its own
  // computed windows — any of which would inflate the sample arbitrarily.
  // Prepare time — a cold build, an in-flight build join, or an
  // admission-queue park — is subtracted outright (prepare_seconds).
  if (plan.ok() && out.windows_computed > 0 && out.windows_joined == 0 &&
      out.windows_from_cache == 0) {
    const int64_t n = ctx.data->num_series();
    const auto [pair_lo, pair_hi] = ctx.query.PairRange(n * (n - 1) / 2);
    const double pairs = static_cast<double>(pair_hi - pair_lo);
    const double cells = static_cast<double>(out.windows_computed) * pairs;
    if (cells > 0 && plan_ns > 0) {
      const double observed = plan_ns / cells;
      MutexLock lock(stats_mutex_);
      exact_cell_ns_ = (1.0 - kExactCostAlpha) * exact_cell_ns_ +
                       kExactCostAlpha * observed;
    }
  }
  // Graceful degradation, mid-run leg: an exact plan that died of resource
  // exhaustion (admission refusal, budget pressure — real or injected) is
  // rerun whole on the approx tier while the deadline still has budget.
  // Only ResourceExhausted: other failures would fail approx identically,
  // and a mid-run DeadlineExceeded means the budget is already gone.
  if (plan.code() == StatusCode::kResourceExhausted &&
      ctx.degrade == DegradePolicy::kAuto && ctx.tier != ServeTier::kApprox &&
      !ctx.deadline.expired()) {
    ServeResult degraded_out;
    degraded_out.tier_used = ServeTier::kApprox;
    degraded_out.degraded = true;
    CorrelationMatrixSeries series;
    const Status fallback =
        RunApproxPlan(ctx, /*stream=*/nullptr, &degraded_out, &series);
    admission_queue_.NotifyReleased();
    {
      // The submission was already counted by the RecordQueryStats above
      // (one query, its exact-attempt window counters); fold in only what
      // the fallback adds — not a second `queries` tick.
      MutexLock lock(stats_mutex_);
      ++stats_.queries_approx;
      ++stats_.degraded_to_approx;
      stats_.windows_computed += degraded_out.windows_computed;
    }
    RETURN_IF_ERROR(fallback);
    degraded_out.series = std::move(series);
    return degraded_out;
  }
  RETURN_IF_ERROR(plan);

  // Assemble the response from the shared per-window edge sets, filtering
  // family-threshold sets down to the query's exact threshold.
  const int64_t n = ctx.data->num_series();
  CorrelationMatrixSeries series(ctx.query, n);
  for (int64_t k = 0; k < ctx.query.NumWindows(); ++k) {
    const std::vector<Edge>& edges = *got[static_cast<size_t>(k)];
    *series.MutableWindow(k) =
        exact_family ? edges : FilterEdges(edges, ctx.query);
  }
  out.series = std::move(series);
  return out;
}

void DangoronServer::RunStreamingQuery(
    const RequestContext& ctx, int64_t max_batch_windows,
    std::shared_ptr<WindowStreamState> stream) {
  ServeResult out;
  Status status = Status::Ok();
  if (ctx.deadline.expired()) {
    out.tier_used = ResolveTier(ctx);  // truthful per-tier attribution
    {
      MutexLock lock(stats_mutex_);
      ++stats_.deadline_exceeded;
    }
    status = Status::DeadlineExceeded(
        "DangoronServer: request deadline passed before the stream started");
  } else {
    // Pre-run degradation leg — same rule as the materialized path.
    const bool degrade_estimate =
        ctx.tier == ServeTier::kExact &&
        ctx.degrade == DegradePolicy::kAuto && ctx.deadline.has_deadline() &&
        EstimateExactCostMs(ctx) > ctx.deadline.remaining_ms();
    if (degrade_estimate || ResolveTier(ctx) == ServeTier::kApprox) {
      out.tier_used = ServeTier::kApprox;
      out.degraded = degrade_estimate;
      status = RunApproxPlan(ctx, stream.get(), &out, /*series_out=*/nullptr);
    } else {
      std::vector<WindowEdges> got;
      int64_t next_deliver = 0;
      status = RunWindowPlan(ctx, max_batch_windows, stream.get(), &got, &out,
                             nullptr, nullptr, &next_deliver);
      // Mid-run degradation leg: the exact plan died of resource
      // exhaustion with deadline budget left — continue on the approx tier
      // from the first undelivered window, under the original indices, so
      // the consumer still sees one ascending exactly-once sequence.
      if (status.code() == StatusCode::kResourceExhausted &&
          ctx.degrade == DegradePolicy::kAuto && !ctx.deadline.expired() &&
          !stream->cancelled()) {
        out.tier_used = ServeTier::kApprox;
        out.degraded = true;
        status = RunApproxPlan(ctx, stream.get(), &out,
                               /*series_out=*/nullptr, next_deliver);
      }
    }
    admission_queue_.NotifyReleased();  // the prepared handle is released
  }
  RecordQueryStats(out, /*streaming=*/true);
  if (status.code() == StatusCode::kCancelled) {
    // Consumer Cancel — or, through the wire layer, a client disconnect.
    MutexLock lock(stats_mutex_);
    ++stats_.streams_cancelled;
  }
  StreamingSummary summary;
  summary.tier_used = out.tier_used;
  summary.prepared_from_cache = out.prepared_from_cache;
  summary.windows_from_cache = out.windows_from_cache;
  summary.windows_computed = out.windows_computed;
  summary.windows_joined = out.windows_joined;
  summary.cells_jumped = out.cells_jumped;
  summary.jumps = out.jumps;
  summary.degraded = out.degraded;
  stream->Finish(std::move(status), summary);
}

void DangoronServer::RecordQueryStats(const ServeResult& out, bool streaming) {
  // Every submission counts, successful or not, and the window counters
  // reflect the work actually done — one accounting rule for both paths.
  MutexLock lock(stats_mutex_);
  ++stats_.queries;
  if (streaming) {
    ++stats_.streaming_queries;
  }
  if (out.tier_used == ServeTier::kApprox) {
    ++stats_.queries_approx;
  }
  if (out.degraded) {
    ++stats_.degraded_to_approx;
  }
  stats_.windows_computed += out.windows_computed;
  stats_.windows_from_cache += out.windows_from_cache;
  stats_.windows_joined += out.windows_joined;
}

DangoronServerStats DangoronServer::stats() const {
  DangoronServerStats snapshot;
  {
    MutexLock lock(stats_mutex_);
    snapshot = stats_;
  }
  {
    // Leak check surface: claims still registered by in-flight plans. On a
    // quiesced server this must read zero — every plan retires its claims
    // on success, failure, cancellation, and deadline abort alike.
    MutexLock lock(inflight_mutex_);
    snapshot.inflight_window_claims =
        static_cast<int64_t>(inflight_windows_.size());
  }
  snapshot.sketch_cache = sketch_cache_.stats();
  snapshot.result_cache = result_cache_.stats();
  return snapshot;
}

}  // namespace dangoron
