#include "serve/server.h"

#include <utility>

#include "engine/dangoron_engine.h"

namespace dangoron {

namespace {

// The evaluation mode of the serving layer: exact incremental — a window's
// edge set must not depend on the query range it was computed for, or
// cross-query reuse would change results.
DangoronOptions ServingEngineOptions(int64_t basic_window) {
  DangoronOptions options;
  options.basic_window = basic_window;
  options.enable_jumping = false;
  options.horizontal_pruning = false;
  return options;
}

}  // namespace

DangoronServer::DangoronServer(const DangoronServerOptions& options)
    : options_(options),
      sketch_cache_(options.sketch_cache_bytes),
      result_cache_(options.result_cache_bytes),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {}

DangoronServer::~DangoronServer() {
  // Drain before member teardown begins: in-flight query tasks schedule
  // ParallelFor helpers on the pool, which the pool's own destructor (it
  // runs with shutdown already flagged) would refuse. Wait() covers those
  // helpers too — a task registers them before it completes, so the
  // in-flight count stays nonzero until the whole query is done.
  pool_->Wait();
}

Status DangoronServer::AddDataset(
    const std::string& name, std::shared_ptr<const TimeSeriesMatrix> data) {
  if (name.empty()) {
    return Status::InvalidArgument("AddDataset: empty name");
  }
  if (data == nullptr || data->empty()) {
    return Status::InvalidArgument("AddDataset: empty dataset '", name, "'");
  }
  if (data->CountMissing() > 0) {
    return Status::FailedPrecondition(
        "AddDataset: dataset '", name,
        "' contains missing values; run InterpolateMissing first");
  }
  if (data->length() < options_.basic_window) {
    return Status::InvalidArgument(
        "AddDataset: dataset '", name, "' has length ", data->length(),
        ", shorter than one basic window of ", options_.basic_window);
  }
  RegisteredDataset registered;
  registered.fingerprint = data->ContentFingerprint();
  registered.data = std::move(data);
  std::lock_guard<std::mutex> lock(datasets_mutex_);
  datasets_[name] = std::move(registered);
  return Status::Ok();
}

Status DangoronServer::AddDataset(const std::string& name,
                                  TimeSeriesMatrix data) {
  return AddDataset(name,
                    std::make_shared<const TimeSeriesMatrix>(std::move(data)));
}

Status DangoronServer::RemoveDataset(const std::string& name) {
  std::lock_guard<std::mutex> lock(datasets_mutex_);
  if (datasets_.erase(name) == 0) {
    return Status::NotFound("RemoveDataset: unknown dataset '", name, "'");
  }
  return Status::Ok();
}

Result<uint64_t> DangoronServer::DatasetFingerprint(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(datasets_mutex_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("DatasetFingerprint: unknown dataset '", name,
                            "'");
  }
  return it->second.fingerprint;
}

std::future<Result<ServeResult>> DangoronServer::Submit(
    const std::string& dataset, const SlidingQuery& query) {
  RegisteredDataset registered;
  {
    std::lock_guard<std::mutex> lock(datasets_mutex_);
    auto it = datasets_.find(dataset);
    if (it == datasets_.end()) {
      std::promise<Result<ServeResult>> failed;
      failed.set_value(
          Status::NotFound("Submit: unknown dataset '", dataset, "'"));
      return failed.get_future();
    }
    registered = it->second;
  }
  return pool_->Async([this, data = std::move(registered.data),
                       fingerprint = registered.fingerprint,
                       query]() mutable -> Result<ServeResult> {
    return RunQuery(std::move(data), fingerprint, query);
  });
}

Result<ServeResult> DangoronServer::Query(const std::string& dataset,
                                          const SlidingQuery& query) {
  return Submit(dataset, query).get();
}

Result<std::shared_ptr<const PreparedDataset>> DangoronServer::GetOrPrepare(
    std::shared_ptr<const TimeSeriesMatrix> data, uint64_t fingerprint,
    bool* shared) {
  const SketchCacheKey key{fingerprint, options_.basic_window};
  if (auto cached = sketch_cache_.Get(key)) {
    *shared = true;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.prepares_shared;
    return cached;
  }

  std::promise<std::shared_ptr<const PreparedDataset>> promise;
  std::shared_future<std::shared_ptr<const PreparedDataset>> join;
  bool producer = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_prepares_.find(key);
    if (it != inflight_prepares_.end()) {
      join = it->second;
    } else {
      producer = true;
      inflight_prepares_.emplace(key, promise.get_future().share());
    }
  }

  if (!producer) {
    // Another query is building this sketch right now; its task fulfills
    // the future before it waits on anything, so this cannot cycle.
    if (auto prepared = join.get()) {
      *shared = true;
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.prepares_shared;
      return prepared;
    }
    // The producer's build failed; fall through and pay our own build so
    // one failure does not poison every waiter with an opaque error.
  }

  auto prepared_or =
      PreparedDataset::Create(std::move(data), options_.basic_window,
                              pool_.get(), fingerprint);
  std::shared_ptr<const PreparedDataset> prepared =
      prepared_or.ok() ? *prepared_or : nullptr;
  if (producer) {
    if (prepared != nullptr) {
      // Publish to the cache before retiring the in-flight entry so a new
      // query always finds one of the two.
      sketch_cache_.Put(key, prepared, prepared->MemoryBytes());
    }
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_prepares_.erase(key);
    }
    promise.set_value(prepared);
  } else if (prepared != nullptr) {
    sketch_cache_.Put(key, prepared, prepared->MemoryBytes());
  }
  if (!prepared_or.ok()) {
    return prepared_or.status();
  }
  *shared = false;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.prepares_built;
  }
  return prepared;
}

Result<ServeResult> DangoronServer::RunQuery(
    std::shared_ptr<const TimeSeriesMatrix> data, uint64_t fingerprint,
    const SlidingQuery& query) {
  RETURN_IF_ERROR(query.Validate(data->length()));
  const int64_t b = options_.basic_window;
  if (query.start % b != 0 || query.window % b != 0 || query.step % b != 0) {
    return Status::InvalidArgument(
        "DangoronServer: query start/window/step must be multiples of the "
        "server basic window ",
        b, " (got start=", query.start, " window=", query.window,
        " step=", query.step, ")");
  }

  ServeResult out;
  ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> prepared,
                   GetOrPrepare(data, fingerprint, &out.prepared_from_cache));

  const int64_t n = data->num_series();
  const int64_t num_windows = query.NumWindows();
  const int64_t ns = query.window / b;
  const int64_t m = query.step / b;
  const int64_t base_w0 = query.start / b;
  if (base_w0 + (num_windows - 1) * m + ns >
      prepared->index().num_basic_windows()) {
    return Status::OutOfRange(
        "DangoronServer: query needs basic windows up to ",
        base_w0 + (num_windows - 1) * m + ns, " but only ",
        prepared->index().num_basic_windows(), " are indexed");
  }
  auto key_for = [&](int64_t k) {
    return WindowKey::Make(fingerprint, b, ns, base_w0 + k * m,
                           query.threshold, query.absolute);
  };

  // Triage every window under one lock: cached, claimed by us, or in flight
  // on a concurrent query. Claims are registered before any evaluation so
  // an identical concurrent submission joins instead of recomputing.
  std::vector<WindowEdges> got(static_cast<size_t>(num_windows));
  std::vector<int64_t> mine;
  struct Join {
    int64_t k = 0;
    std::shared_future<WindowEdges> future;
  };
  std::vector<Join> joins;
  std::vector<std::promise<WindowEdges>> promises;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    for (int64_t k = 0; k < num_windows; ++k) {
      if (auto cached = result_cache_.Get(key_for(k))) {
        got[static_cast<size_t>(k)] = std::move(cached);
        ++out.windows_from_cache;
        continue;
      }
      auto it = inflight_windows_.find(key_for(k));
      if (it != inflight_windows_.end()) {
        joins.push_back(Join{k, it->second});
      } else {
        mine.push_back(k);
      }
    }
    promises.resize(mine.size());
    for (size_t idx = 0; idx < mine.size(); ++idx) {
      inflight_windows_.emplace(key_for(mine[idx]),
                                promises[idx].get_future().share());
    }
  }

  // Evaluate claimed windows in maximal contiguous runs — one QueryPrepared
  // per run keeps the pair-block sweep batched — and fulfill each window's
  // promise as it lands. Every claim is fulfilled (with null on failure)
  // before this task waits on anyone else's future: that ordering is the
  // no-deadlock invariant of the dedup protocol.
  const DangoronOptions engine_options = ServingEngineOptions(b);
  auto retire = [&](size_t idx, WindowEdges edges) {
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_windows_.erase(key_for(mine[idx]));
    }
    promises[idx].set_value(std::move(edges));
  };
  Status failure = Status::Ok();
  size_t idx = 0;
  while (idx < mine.size() && failure.ok()) {
    size_t run_end = idx + 1;
    while (run_end < mine.size() &&
           mine[run_end] == mine[run_end - 1] + 1) {
      ++run_end;
    }
    const int64_t k0 = mine[idx];
    const int64_t k1 = mine[run_end - 1];
    SlidingQuery sub = query;
    sub.start = query.start + k0 * query.step;
    sub.end = sub.start + (k1 - k0) * query.step + query.window;
    auto series_or = DangoronEngine::QueryPrepared(
        engine_options, prepared->index(), sub, pool_.get(), nullptr);
    if (!series_or.ok()) {
      failure = series_or.status();
      break;
    }
    for (size_t r = idx; r < run_end; ++r) {
      const int64_t k = mine[r];
      auto edges = std::make_shared<std::vector<Edge>>(
          std::move(*series_or->MutableWindow(k - k0)));
      result_cache_.Put(key_for(k), edges, WindowEdgesBytes(*edges));
      retire(r, edges);
      got[static_cast<size_t>(k)] = std::move(edges);
      ++out.windows_computed;
    }
    idx = run_end;
  }
  if (!failure.ok()) {
    for (size_t r = idx; r < mine.size(); ++r) {
      retire(r, nullptr);
    }
    return failure;
  }

  // Join windows claimed by concurrent queries. A null result means that
  // query failed after claiming; evaluate the window ourselves rather than
  // inheriting its error.
  for (Join& join : joins) {
    WindowEdges edges = join.future.get();
    if (edges == nullptr) {
      SlidingQuery sub = query;
      sub.start = query.start + join.k * query.step;
      sub.end = sub.start + query.window;
      ASSIGN_OR_RETURN(CorrelationMatrixSeries single,
                       DangoronEngine::QueryPrepared(
                           engine_options, prepared->index(), sub,
                           pool_.get(), nullptr));
      edges = std::make_shared<std::vector<Edge>>(
          std::move(*single.MutableWindow(0)));
      result_cache_.Put(key_for(join.k), edges, WindowEdgesBytes(*edges));
      ++out.windows_computed;
    } else {
      ++out.windows_joined;
    }
    got[static_cast<size_t>(join.k)] = std::move(edges);
  }

  // Assemble the response from the shared per-window edge sets.
  CorrelationMatrixSeries series(query, n);
  for (int64_t k = 0; k < num_windows; ++k) {
    *series.MutableWindow(k) = *got[static_cast<size_t>(k)];
  }
  out.series = std::move(series);

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
    stats_.windows_computed += out.windows_computed;
    stats_.windows_from_cache += out.windows_from_cache;
    stats_.windows_joined += out.windows_joined;
  }
  return out;
}

DangoronServerStats DangoronServer::stats() const {
  DangoronServerStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
  }
  snapshot.sketch_cache = sketch_cache_.stats();
  snapshot.result_cache = result_cache_.stats();
  return snapshot;
}

}  // namespace dangoron
