#include "serve/admission_queue.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"

namespace dangoron {

PrepareAdmissionQueue::PrepareAdmissionQueue(SketchCache* cache,
                                             int64_t max_parked)
    : cache_(cache), max_parked_(max_parked) {}

bool PrepareAdmissionQueue::TryReserveLocked(int64_t estimate,
                                             const SketchCacheKey& key) {
  const int64_t budget = cache_->byte_budget();
  auto free_bytes = [&]() {
    return budget - cache_->stats().bytes - reserved_bytes_;
  };
  int64_t free_now = free_bytes();
  if (estimate > free_now) {
    // Reclaim: evict idle LRU entries (pinned entries are skipped — the
    // cache dropping its reference to them would free nothing; the
    // request's own key is skipped — reclaiming the sketch this request
    // is being admitted FOR would force a pointless rebuild).
    cache_->EvictIdleLru(estimate - free_now, &key);
    free_now = free_bytes();
  }
  if (estimate <= free_now) {
    reserved_bytes_ += estimate;
    return true;
  }
  return false;
}

void PrepareAdmissionQueue::RemoveParkedLocked(
    const std::shared_ptr<Parked>& entry) {
  parked_.erase(std::remove(parked_.begin(), parked_.end(), entry),
                parked_.end());
}

Status PrepareAdmissionQueue::Admit(
    int64_t estimate, const SketchCacheKey& key,
    std::chrono::steady_clock::time_point deadline, WindowStreamState* stream,
    const std::function<void()>& on_first_park,
    std::shared_ptr<const PreparedDataset>* cached_out) {
  cached_out->reset();
  // Fires before any registration or reservation, so an injected failure
  // (typically error:resource_exhausted, to drive degradation paths) can
  // never leak a parked entry or reserved bytes.
  DANGORON_FAILPOINT("admission.admit");
  const bool has_deadline =
      deadline != std::chrono::steady_clock::time_point::max();
  std::shared_ptr<Parked> me;
  bool waker_registered = false;
  // Shared exit: unparking happens under `mutex_` at the decision site
  // (a departing parked entry may unblock the new head, so it notifies);
  // the stream waker is unregistered outside it (RemoveCancelWaker takes
  // the stream's own lock — never hold both).
  auto finish = [&](Status status) {
    if (me != nullptr) {
      if (waker_registered) {
        stream->RemoveCancelWaker(&me->waker);
      }
      NotifyReleased();  // FIFO: whoever is head now gets to re-check
    }
    return status;
  };

  while (true) {
    bool admitted = false;
    bool first_park = false;
    Status failure = Status::Ok();
    {
      MutexLock lock(mutex_);
      // FIFO: only the queue head may reserve, and new arrivals do not
      // barge past parked requests into freed budget — otherwise a steady
      // trickle of small prepares starves a large parked one.
      const bool my_turn =
          me == nullptr ? parked_.empty() : parked_.front() == me;
      if (shutdown_) {
        failure =
            Status::ResourceExhausted("admission queue: server shutting down");
      } else if (cache_->Contains(key) &&
                 (*cached_out = cache_->Get(key)) != nullptr) {
        // A concurrent build published the sketch this request wants while
        // it waited: admit for free — no reservation, and crucially no
        // reclaim round that could have evicted that very entry. The
        // Contains gate keeps per-wake polling out of the cache's hit/miss
        // accounting; Get runs only on an actual landing (its recency bump
        // and hit are the real use). A Get miss after Contains — evicted
        // in the window between the two — just falls through.
        admitted = true;
      } else if (estimate > cache_->byte_budget()) {
        // Refuse BEFORE any reclaim attempt: a request that can never be
        // admitted must not flush the warm idle sketches on its way out.
        failure = Status::ResourceExhausted(
            "admission queue: estimated ", estimate,
            " bytes exceeds the sketch-cache budget of ",
            cache_->byte_budget(), " bytes — no eviction can admit it");
      } else if (my_turn && TryReserveLocked(estimate, key)) {
        admitted = true;
      } else if (me == nullptr) {
        if (static_cast<int64_t>(parked_.size()) >= max_parked_) {
          return Status::ResourceExhausted(
              "admission queue: ", parked_.size(),
              " prepares already parked (admission_queue = ", max_parked_,
              "); retry later or raise the sketch-cache budget");
        }
        me = std::make_shared<Parked>();
        parked_.push_back(me);
        first_park = true;
      }
      if (admitted || !failure.ok()) {
        RemoveParkedLocked(me);  // no-op when never parked (me == nullptr)
      }
    }
    if (admitted || !failure.ok()) {
      return finish(std::move(failure));  // Ok when admitted
    }
    if (first_park && on_first_park != nullptr) {
      on_first_park();
    }

    if (stream != nullptr && !waker_registered) {
      // Alias the waker to the entry so Cancel's notification keeps it
      // alive; a no-op on an already-cancelled stream (the predicate below
      // sees cancelled() before sleeping).
      stream->AddCancelWaker(std::shared_ptr<CancelWaker>(me, &me->waker));
      waker_registered = true;
    }

    bool cancelled = false;
    bool timed_out = false;
    {
      // wake: a spurious pass through the re-check loop (must be harmless);
      // delay/error (via Fire inside FireWake's registry) are not modeled
      // here — the park path only ever waits or re-checks.
      const bool spurious = DANGORON_FAILPOINT_WAKE("admission.park");
      MutexLock wl(me->waker.m);
      while (!spurious && !me->notified &&
             !(stream != nullptr && stream->cancelled())) {
        if (!has_deadline) {
          me->waker.cv.Wait(me->waker.m);
        } else if (me->waker.cv.WaitUntil(me->waker.m, deadline)) {
          // Deadline passed: woken only if the event landed exactly then.
          timed_out = !me->notified &&
                      !(stream != nullptr && stream->cancelled());
          break;
        }
      }
      cancelled = stream != nullptr && stream->cancelled();
      me->notified = false;
    }
    if (cancelled) {
      {
        MutexLock lock(mutex_);
        RemoveParkedLocked(me);
      }
      return finish(Status::Cancelled(
          "admission queue: stream cancelled while parked"));
    }
    if (timed_out) {
      // One final budget check: the freeing event may have landed exactly
      // at the deadline without a notification reaching us in time.
      bool reserved = false;
      {
        MutexLock lock(mutex_);
        if (!shutdown_) {
          if (cache_->Contains(key) &&
              (*cached_out = cache_->Get(key)) != nullptr) {
            reserved = true;  // admitted via the cache, nothing reserved
          } else {
            reserved = parked_.front() == me && TryReserveLocked(estimate, key);
          }
        }
        RemoveParkedLocked(me);
      }
      if (reserved) {
        return finish(Status::Ok());
      }
      return finish(Status::DeadlineExceeded(
          "admission queue: deadline passed while parked for ", estimate,
          " bytes of sketch-cache budget"));
    }
  }
}

void PrepareAdmissionQueue::Release(int64_t estimate) {
  {
    MutexLock lock(mutex_);
    reserved_bytes_ -= estimate;
  }
  NotifyReleased();
}

void PrepareAdmissionQueue::NotifyReleased() {
  std::vector<std::shared_ptr<Parked>> parked;
  {
    MutexLock lock(mutex_);
    if (parked_.empty()) {
      return;
    }
    parked = parked_;
  }
  for (const std::shared_ptr<Parked>& entry : parked) {
    {
      MutexLock lock(entry->waker.m);
      entry->notified = true;
    }
    entry->waker.cv.NotifyAll();
  }
}

void PrepareAdmissionQueue::Shutdown() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  NotifyReleased();  // parked waiters re-check and observe shutdown_
}

int64_t PrepareAdmissionQueue::reserved_bytes() const {
  MutexLock lock(mutex_);
  return reserved_bytes_;
}

int64_t PrepareAdmissionQueue::parked() const {
  MutexLock lock(mutex_);
  return static_cast<int64_t>(parked_.size());
}

}  // namespace dangoron
