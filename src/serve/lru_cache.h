#ifndef DANGORON_SERVE_LRU_CACHE_H_
#define DANGORON_SERVE_LRU_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/sync.h"

namespace dangoron {

/// Counters a byte-budgeted cache exposes for the server's stats surface.
struct LruCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  int64_t bytes = 0;    ///< bytes currently retained
  int64_t entries = 0;  ///< entries currently retained
};

/// Thread-safe LRU cache of shared immutable values under a byte budget.
///
/// Values are `shared_ptr<const V>`: eviction only drops the cache's
/// reference, so readers that already hold a handle keep a consistent view —
/// the value's storage dies (and, for sketches, returns to the process-wide
/// recycler) when the last in-flight user releases it. An entry whose cost
/// alone exceeds the budget is evicted immediately after insertion; callers
/// still use the handle they passed in.
template <typename Key, typename V, typename KeyHash>
class LruByteCache {
 public:
  explicit LruByteCache(int64_t byte_budget) : byte_budget_(byte_budget) {}

  LruByteCache(const LruByteCache&) = delete;
  LruByteCache& operator=(const LruByteCache&) = delete;

  /// Returns the cached value (bumping its recency) or nullptr.
  std::shared_ptr<const V> Get(const Key& key) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    lru_.splice(lru_.end(), lru_, it->second);  // back = most recent
    return it->second->value;
  }

  /// Inserts (or refreshes) `value` at a cost of `bytes`, then evicts from
  /// the least recently used end until the budget holds. Every displaced
  /// value — evicted, or replaced by a refresh — is released after the
  /// lock is dropped, and the eviction listener fires after it (evictions
  /// only, not refreshes), so value destructors and listeners may re-enter
  /// the cache.
  void Put(const Key& key, std::shared_ptr<const V> value, int64_t bytes)
      EXCLUDES(mutex_) {
    std::vector<std::shared_ptr<const V>> displaced;
    bool evicted_any = false;
    {
      MutexLock lock(mutex_);
      if (bytes > byte_budget_) {
        // An entry that can never fit must not flush the warm entries on
        // its way through; reject it (dropping any stale version under the
        // key).
        auto it = map_.find(key);
        if (it != map_.end()) {
          stats_.bytes -= it->second->bytes;
          displaced.push_back(std::move(it->second->value));
          lru_.erase(it->second);
          map_.erase(it);
          evicted_any = true;  // listener fires only when bytes were freed
        }
        ++stats_.evictions;  // the rejection itself counts, displaced or not
        stats_.entries = static_cast<int64_t>(lru_.size());
      } else {
        auto it = map_.find(key);
        if (it != map_.end()) {
          stats_.bytes += bytes - it->second->bytes;
          displaced.push_back(std::move(it->second->value));
          it->second->value = std::move(value);
          it->second->bytes = bytes;
          lru_.splice(lru_.end(), lru_, it->second);
        } else {
          lru_.push_back(Entry{key, std::move(value), bytes});
          map_.emplace(key, std::prev(lru_.end()));
          stats_.bytes += bytes;
          ++stats_.insertions;
        }
        while (stats_.bytes > byte_budget_ && !lru_.empty()) {
          stats_.bytes -= lru_.front().bytes;
          displaced.push_back(std::move(lru_.front().value));
          map_.erase(lru_.front().key);
          lru_.pop_front();
          ++stats_.evictions;
          evicted_any = true;
        }
        stats_.entries = static_cast<int64_t>(lru_.size());
      }
    }
    if (evicted_any) {
      // Fires outside the lock, so a delay/wake here widens the window
      // between the eviction and its notification — the race chaos tests
      // need to hit reliably.
      DANGORON_FAILPOINT_HIT("cache.evict");
    }
    if (evicted_any && eviction_listener_ != nullptr) {
      // Reentrancy guard: a listener is free to call back into this cache
      // (Get/Put/EvictIdleLru take the lock fresh), but when a nested Put
      // evicts again we must not recurse into the listener — listener ->
      // Put -> listener -> ... has no depth bound. The nested eviction's
      // notification coalesces into the notification already running,
      // which is sound for its only use (admission re-check: the listener
      // runs after the nested eviction freed its bytes). Thread-local and
      // per-instantiation: one pointer per (Key, V) cache type marks the
      // cache this thread is currently notifying for.
      static thread_local const void* firing = nullptr;
      if (firing != this) {
        const void* const prior = firing;
        firing = this;
        eviction_listener_();
        firing = prior;
      }
    }
  }

  /// Evicts least-recently-used *idle* entries — entries whose value the
  /// cache alone references (`use_count() == 1`), so eviction actually
  /// frees their bytes — until at least `bytes_needed` have been freed.
  /// All-or-nothing: when the idle entries together cannot cover
  /// `bytes_needed`, nothing is evicted and 0 is returned — partial
  /// reclamation would flush warm sketches without admitting anyone (every
  /// wakeup of a large parked prepare would otherwise sacrifice whatever
  /// small entry just went idle). Returns the bytes freed. Entries pinned
  /// by in-flight readers are skipped: dropping the cache's reference to
  /// them would release nothing. `skip_key` (nullable) marks one key as
  /// untouchable — the admission queue passes the key it is reclaiming FOR,
  /// so a request never evicts the very sketch it needs. Does NOT fire the
  /// eviction listener — the caller initiated the eviction and re-checks
  /// on its own.
  int64_t EvictIdleLru(int64_t bytes_needed, const Key* skip_key = nullptr)
      EXCLUDES(mutex_) {
    std::vector<std::shared_ptr<const V>> evicted;
    int64_t freed = 0;
    {
      MutexLock lock(mutex_);
      auto reclaimable = [&](const Entry& entry) {
        return entry.value.use_count() == 1 &&
               (skip_key == nullptr || !(entry.key == *skip_key));
      };
      int64_t idle_bytes = 0;
      for (const Entry& entry : lru_) {
        if (reclaimable(entry)) {
          idle_bytes += entry.bytes;
        }
      }
      if (idle_bytes < bytes_needed) {
        return 0;
      }
      for (auto it = lru_.begin(); it != lru_.end() && freed < bytes_needed;) {
        if (!reclaimable(*it)) {
          ++it;
          continue;
        }
        freed += it->bytes;
        stats_.bytes -= it->bytes;
        ++stats_.evictions;
        evicted.push_back(std::move(it->value));
        map_.erase(it->key);
        it = lru_.erase(it);
      }
      stats_.entries = static_cast<int64_t>(lru_.size());
    }
    return freed;
  }

  /// Registers `listener`, called (outside the cache lock, from the
  /// Put-calling thread) whenever an insertion evicted at least one entry —
  /// the hook a budget-waiting admission queue uses to re-check. Set once,
  /// before concurrent use.
  void SetEvictionListener(std::function<void()> listener) {
    eviction_listener_ = std::move(listener);
  }

  /// True when `key` is cached; no recency bump, no hit/miss accounting —
  /// the read-only probe behind cache-coverage cost estimates.
  bool Contains(const Key& key) const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return map_.find(key) != map_.end();
  }

  int64_t byte_budget() const { return byte_budget_; }

  LruCacheStats stats() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const V> value;
    int64_t bytes = 0;
  };

  mutable Mutex mutex_;
  const int64_t byte_budget_;
  std::list<Entry> lru_ GUARDED_BY(mutex_);  // front = least recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, KeyHash> map_
      GUARDED_BY(mutex_);
  LruCacheStats stats_ GUARDED_BY(mutex_);
  // Set once before concurrent use (SetEvictionListener), then only read:
  // deliberately unguarded so the listener can fire outside the lock — the
  // EXCLUDES on Put is the machine-checked half of that contract.
  std::function<void()> eviction_listener_;
};

/// splitmix64 finalizer — the mixing step of the cache key hashes.
inline uint64_t MixHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace dangoron

#endif  // DANGORON_SERVE_LRU_CACHE_H_
