#ifndef DANGORON_SERVE_LRU_CACHE_H_
#define DANGORON_SERVE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace dangoron {

/// Counters a byte-budgeted cache exposes for the server's stats surface.
struct LruCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  int64_t bytes = 0;    ///< bytes currently retained
  int64_t entries = 0;  ///< entries currently retained
};

/// Thread-safe LRU cache of shared immutable values under a byte budget.
///
/// Values are `shared_ptr<const V>`: eviction only drops the cache's
/// reference, so readers that already hold a handle keep a consistent view —
/// the value's storage dies (and, for sketches, returns to the process-wide
/// recycler) when the last in-flight user releases it. An entry whose cost
/// alone exceeds the budget is evicted immediately after insertion; callers
/// still use the handle they passed in.
template <typename Key, typename V, typename KeyHash>
class LruByteCache {
 public:
  explicit LruByteCache(int64_t byte_budget) : byte_budget_(byte_budget) {}

  LruByteCache(const LruByteCache&) = delete;
  LruByteCache& operator=(const LruByteCache&) = delete;

  /// Returns the cached value (bumping its recency) or nullptr.
  std::shared_ptr<const V> Get(const Key& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    lru_.splice(lru_.end(), lru_, it->second);  // back = most recent
    return it->second->value;
  }

  /// Inserts (or refreshes) `value` at a cost of `bytes`, then evicts from
  /// the least recently used end until the budget holds.
  void Put(const Key& key, std::shared_ptr<const V> value, int64_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (bytes > byte_budget_) {
      // An entry that can never fit must not flush the warm entries on its
      // way through; reject it (dropping any stale version under the key).
      auto it = map_.find(key);
      if (it != map_.end()) {
        stats_.bytes -= it->second->bytes;
        lru_.erase(it->second);
        map_.erase(it);
      }
      ++stats_.evictions;
      stats_.entries = static_cast<int64_t>(lru_.size());
      return;
    }
    auto it = map_.find(key);
    if (it != map_.end()) {
      stats_.bytes += bytes - it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      lru_.splice(lru_.end(), lru_, it->second);
    } else {
      lru_.push_back(Entry{key, std::move(value), bytes});
      map_.emplace(key, std::prev(lru_.end()));
      stats_.bytes += bytes;
      ++stats_.insertions;
    }
    while (stats_.bytes > byte_budget_ && !lru_.empty()) {
      stats_.bytes -= lru_.front().bytes;
      map_.erase(lru_.front().key);
      lru_.pop_front();
      ++stats_.evictions;
    }
    stats_.entries = static_cast<int64_t>(lru_.size());
  }

  int64_t byte_budget() const { return byte_budget_; }

  LruCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const V> value;
    int64_t bytes = 0;
  };

  mutable std::mutex mutex_;
  int64_t byte_budget_;
  std::list<Entry> lru_;  // front = least recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, KeyHash> map_;
  LruCacheStats stats_;
};

/// splitmix64 finalizer — the mixing step of the cache key hashes.
inline uint64_t MixHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace dangoron

#endif  // DANGORON_SERVE_LRU_CACHE_H_
