#ifndef DANGORON_SERVE_CACHE_SINK_H_
#define DANGORON_SERVE_CACHE_SINK_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "engine/window_sink.h"
#include "serve/window_result_cache.h"

namespace dangoron {

/// A WindowSink that publishes every emitted window into a
/// `WindowResultCache` — the one adapter behind both producers that warm a
/// server's window cache from outside a query:
///
/// - engine-driven (bounded) producers: `OnBegin` derives the window
///   geometry from the query, so `ReplayToSink` / `QueryToSink` warm the
///   cache directly;
/// - open-ended producers (`StreamingNetworkBuilder::EmitTo`): no `OnBegin`
///   arrives, so construct with `FixedGeometry` and windows are keyed from
///   the stream's configuration.
///
/// Every published window must contain exactly the edges clearing
/// `threshold` under `absolute` — the key is a promise about the edge set's
/// completeness (see WindowKey). Edges are moved into one shared allocation:
/// no copy, no double-buffering. The cache must outlive the sink.
class CacheWindowSink final : public WindowSink {
 public:
  /// Geometry for open-ended producers: window k is keyed at
  /// start_bw = start0_bw + k * step_bws.
  struct FixedGeometry {
    int64_t window_bws = 0;
    int64_t step_bws = 0;
    int64_t start0_bw = 0;
    double threshold = 0.0;
    bool absolute = false;
    int64_t pair_begin = 0;  ///< pair-range restriction; (0, 0) = all pairs
    int64_t pair_end = 0;
  };

  /// Engine-driven form: geometry arrives via OnBegin. The driving query's
  /// start/window/step must be multiples of `basic_window`.
  CacheWindowSink(WindowResultCache* cache, uint64_t fingerprint,
                  int64_t basic_window)
      : cache_(cache), fingerprint_(fingerprint), basic_window_(basic_window) {}

  /// Open-ended form: fixed geometry, no OnBegin needed.
  CacheWindowSink(WindowResultCache* cache, uint64_t fingerprint,
                  int64_t basic_window, const FixedGeometry& geometry)
      : cache_(cache),
        fingerprint_(fingerprint),
        basic_window_(basic_window),
        geometry_(geometry) {}

  Status OnBegin(const SlidingQuery& query, int64_t num_series) override {
    (void)num_series;
    const int64_t b = basic_window_;
    if (query.start % b != 0 || query.window % b != 0 || query.step % b != 0) {
      return Status::InvalidArgument(
          "CacheWindowSink: query start/window/step must be multiples of the "
          "basic window ",
          b);
    }
    geometry_.window_bws = query.window / b;
    geometry_.step_bws = query.step / b;
    geometry_.start0_bw = query.start / b;
    geometry_.threshold = query.threshold;
    geometry_.absolute = query.absolute;
    geometry_.pair_begin = query.pair_begin;
    geometry_.pair_end = query.pair_end;
    return Status::Ok();
  }

  bool OnWindow(int64_t window_index, std::vector<Edge> edges) override {
    auto shared = std::make_shared<std::vector<Edge>>(std::move(edges));
    const int64_t bytes = WindowEdgesBytes(*shared);
    cache_->Put(
        WindowKey::Make(fingerprint_, basic_window_, geometry_.window_bws,
                        geometry_.start0_bw + window_index * geometry_.step_bws,
                        geometry_.threshold, geometry_.absolute,
                        geometry_.pair_begin, geometry_.pair_end),
        std::move(shared), bytes);
    ++windows_published_;
    return true;
  }

  int64_t windows_published() const { return windows_published_; }

 private:
  WindowResultCache* cache_;
  uint64_t fingerprint_;
  int64_t basic_window_;
  FixedGeometry geometry_;
  int64_t windows_published_ = 0;
};

}  // namespace dangoron

#endif  // DANGORON_SERVE_CACHE_SINK_H_
