#ifndef DANGORON_SERVE_QUERY_REQUEST_H_
#define DANGORON_SERVE_QUERY_REQUEST_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "engine/query.h"

namespace dangoron {

/// Service tier of one submission.
///
/// - `kExact`: incremental exact evaluation (no Eq. 2 jumping) through the
///   shared window-result cache — byte-stable results that match NaiveEngine
///   under every cache interleaving, and every evaluated window is reusable
///   by overlapping queries. The historical default.
/// - `kApprox`: Eq. 2 temporal jumping per request — the paper's core
///   optimization, for latency-critical clients. Shares the prepared sketch
///   with the exact tier but *bypasses the window-result cache entirely*
///   (reads and writes): a jumped window's edge set depends on the query's
///   range, so publishing it would poison cross-query reuse.
/// - `kAuto`: the server picks — approx when the request's deadline is
///   tighter than its estimate of the exact evaluation cost, exact
///   otherwise (and always exact without a deadline).
enum class ServeTier : int8_t {
  kExact = 0,
  kApprox = 1,
  kAuto = 2,
};

/// Admission policy for a prepare that does not fit the sketch-cache budget.
///
/// - `kRefuse`: reject with ResourceExhausted up front (the PR 3 policy;
///   only active when the server's `refuse_oversized_prepares` is on —
///   otherwise oversized prepares are built and immediately evicted).
/// - `kQueue`: park the request in a bounded deadline-aware wait queue until
///   sketch-cache evictions (or released in-flight handles) free enough
///   budget, the request's deadline passes (DeadlineExceeded), or its
///   stream is cancelled.
enum class AdmissionPolicy : int8_t {
  kRefuse = 0,
  kQueue = 1,
};

/// Graceful-degradation policy of an exact-tier request under pressure.
///
/// - `kOff`: a blown deadline estimate or a mid-query ResourceExhausted
///   surfaces as the failure it is (the historical behavior).
/// - `kAuto`: the server degrades exact -> approx instead of failing: a
///   request whose deadline is tighter than the exact cost estimate is
///   served approx up front, and an exact plan that fails with
///   ResourceExhausted mid-query (admission refusal, budget pressure) is
///   retried on the approx tier while the deadline still has budget.
///   Degraded requests report `tier_used = kApprox` and bump the server's
///   `degraded_to_approx` counter — a late exact answer is worse than an
///   on-time approximate one, but the substitution is never silent.
enum class DegradePolicy : int8_t {
  kOff = 0,
  kAuto = 1,
};

std::string_view ServeTierName(ServeTier tier);
std::string_view AdmissionPolicyName(AdmissionPolicy policy);
std::string_view DegradePolicyName(DegradePolicy policy);
Result<ServeTier> ParseServeTier(const std::string& text);
Result<AdmissionPolicy> ParseAdmissionPolicy(const std::string& text);
Result<DegradePolicy> ParseDegradePolicy(const std::string& text);

/// Canonical defaults of the per-stream delivery knobs — the single source
/// of truth both `ServeOptions` here and the legacy
/// `StreamingSubmitOptions` (serve/window_stream.h) default from, so the
/// two submission surfaces cannot silently diverge.
inline constexpr int64_t kDefaultStreamQueueCapacity = 8;
inline constexpr int64_t kDefaultMaxBatchWindows = 4;

/// Per-request serving options. Unset optionals fall back to the server's
/// configured defaults (`default_tier` / `admission` in
/// DangoronServerOptions), so a default-constructed ServeOptions reproduces
/// the server's historical behavior exactly.
struct ServeOptions {
  /// Service tier; unset -> the server's `default_tier` (exact by default).
  std::optional<ServeTier> tier;

  /// Latency budget in milliseconds, measured from submission; unset = no
  /// deadline (set values must be > 0 — `Validate` rejects the rest). The
  /// deadline governs admission (a queued request is refused with
  /// DeadlineExceeded once it passes; a request whose deadline already
  /// passed when its task starts fails the same way), the `kAuto` tier
  /// choice, and — since the hard-deadline work — evaluation itself: an
  /// exact sweep checks the deadline at band/window cadence and aborts
  /// mid-run with DeadlineExceeded, delivering (and caching) every window
  /// completed before it.
  std::optional<int64_t> deadline_ms;

  /// Admission policy for oversized prepares; unset -> the server's
  /// `admission` default (refuse by default).
  std::optional<AdmissionPolicy> admission;

  /// Degradation policy under pressure (exact tier only); unset -> the
  /// server's `degrade` default (off by default).
  std::optional<DegradePolicy> degrade;

  // Streaming-delivery knobs (SubmitStreaming only; the per-stream
  // StreamingSubmitOptions folded into the request surface — same meanings
  // and defaults as serve/window_stream.h).
  /// Capacity of the bounded delivery queue (backpressure bound).
  int64_t queue_capacity = kDefaultStreamQueueCapacity;
  /// Cap on the contiguous window run one engine pass claims (0 =
  /// unbounded); bounds the undelivered backlog, claim granularity, and
  /// cancel latency. Exact tier only — the approx tier takes no claims.
  int64_t max_batch_windows = kDefaultMaxBatchWindows;
};

/// One submission against the serving layer: the dataset to query, the
/// sliding-window question, and how to serve it. This is the server's
/// primary entry point (`Submit` / `SubmitStreaming` / `Query` all take
/// one); the bare `(dataset, query)` overloads are thin wrappers building a
/// default request. Plain data, cheap to copy — and the unit a sharding
/// router would serialize to fan a query out across server processes.
struct QueryRequest {
  std::string dataset;
  SlidingQuery query;
  ServeOptions options;

  /// Structural validation of the request envelope — the checks that need
  /// no server state (the query itself is validated against the dataset at
  /// plan time): non-empty dataset name, a set deadline_ms > 0, a positive
  /// queue capacity, a non-negative batch cap. Called by the server on
  /// every submission; exposed so clients can reject bad requests before
  /// paying a round trip.
  Status Validate() const;
};

/// The absolute deadline of `options` measured from `now`;
/// time_point::max() when the request has none.
inline std::chrono::steady_clock::time_point RequestDeadline(
    const ServeOptions& options,
    std::chrono::steady_clock::time_point now =
        std::chrono::steady_clock::now()) {
  if (!options.deadline_ms.has_value() || *options.deadline_ms <= 0) {
    return std::chrono::steady_clock::time_point::max();
  }
  return now + std::chrono::milliseconds(*options.deadline_ms);
}

}  // namespace dangoron

#endif  // DANGORON_SERVE_QUERY_REQUEST_H_
