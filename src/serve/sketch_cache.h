#ifndef DANGORON_SERVE_SKETCH_CACHE_H_
#define DANGORON_SERVE_SKETCH_CACHE_H_

#include <cstdint>
#include <memory>

#include "serve/lru_cache.h"
#include "serve/prepared_dataset.h"

namespace dangoron {

/// Identity of a prepared sketch: what the data is and at which basic-window
/// granularity it was indexed. Two datasets with byte-identical values share
/// one entry regardless of registration name.
struct SketchCacheKey {
  uint64_t fingerprint = 0;
  int64_t basic_window = 0;

  bool operator==(const SketchCacheKey&) const = default;
};

struct SketchCacheKeyHash {
  size_t operator()(const SketchCacheKey& key) const {
    return static_cast<size_t>(
        MixHash(key.fingerprint ^
                MixHash(static_cast<uint64_t>(key.basic_window))));
  }
};

/// LRU cache of PreparedDataset handles under a byte budget (each entry
/// costs PreparedDataset::MemoryBytes()). Eviction drops the cache's
/// reference only: in-flight queries keep their handle alive, and when the
/// last reference dies the index destructor returns the big pair-prefix
/// blocks to the process-wide sketch storage recycler, so re-preparing an
/// evicted dataset of similar shape overwrites warm pages instead of
/// faulting fresh ones. Thread-safe.
using SketchCache =
    LruByteCache<SketchCacheKey, PreparedDataset, SketchCacheKeyHash>;

}  // namespace dangoron

#endif  // DANGORON_SERVE_SKETCH_CACHE_H_
