#include "dft/fft.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"
#include "common/math_utils.h"

namespace dangoron {

namespace {

using Cplx = std::complex<double>;

constexpr double kPi = std::numbers::pi;

// In-place iterative radix-2 Cooley-Tukey; `data` size must be a power of 2.
void FftRadix2(std::vector<Cplx>* data, bool inverse) {
  std::vector<Cplx>& a = *data;
  const size_t n = a.size();
  DCHECK(IsPowerOfTwo(static_cast<int64_t>(n)));

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(a[i], a[j]);
    }
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Cplx wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const Cplx u = a[i + j];
        const Cplx v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein chirp-z: arbitrary-length DFT via one power-of-two convolution.
void FftBluestein(std::vector<Cplx>* data, bool inverse) {
  std::vector<Cplx>& x = *data;
  const int64_t n = static_cast<int64_t>(x.size());
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp factors w_k = exp(sign * i * pi * k^2 / n). Reduce k^2 mod 2n
  // before converting to an angle to keep precision at large n.
  std::vector<Cplx> chirp(static_cast<size_t>(n));
  for (int64_t k = 0; k < n; ++k) {
    const int64_t k2_mod = static_cast<int64_t>(
        (static_cast<unsigned __int128>(k) * static_cast<uint64_t>(k)) %
        static_cast<uint64_t>(2 * n));
    const double angle = sign * kPi * static_cast<double>(k2_mod) /
                         static_cast<double>(n);
    chirp[static_cast<size_t>(k)] = Cplx(std::cos(angle), std::sin(angle));
  }

  const int64_t m = NextPowerOfTwo(2 * n - 1);
  std::vector<Cplx> a(static_cast<size_t>(m), Cplx(0.0, 0.0));
  std::vector<Cplx> b(static_cast<size_t>(m), Cplx(0.0, 0.0));
  for (int64_t k = 0; k < n; ++k) {
    a[static_cast<size_t>(k)] =
        x[static_cast<size_t>(k)] * chirp[static_cast<size_t>(k)];
    b[static_cast<size_t>(k)] = std::conj(chirp[static_cast<size_t>(k)]);
  }
  for (int64_t k = 1; k < n; ++k) {
    b[static_cast<size_t>(m - k)] = b[static_cast<size_t>(k)];
  }

  FftRadix2(&a, /*inverse=*/false);
  FftRadix2(&b, /*inverse=*/false);
  for (int64_t k = 0; k < m; ++k) {
    a[static_cast<size_t>(k)] *= b[static_cast<size_t>(k)];
  }
  FftRadix2(&a, /*inverse=*/true);
  const double scale = 1.0 / static_cast<double>(m);

  for (int64_t k = 0; k < n; ++k) {
    x[static_cast<size_t>(k)] =
        a[static_cast<size_t>(k)] * scale * chirp[static_cast<size_t>(k)];
  }
}

}  // namespace

Status Fft(std::vector<Cplx>* data, bool inverse) {
  if (data == nullptr || data->empty()) {
    return Status::InvalidArgument("Fft: empty input");
  }
  const int64_t n = static_cast<int64_t>(data->size());
  if (IsPowerOfTwo(n)) {
    FftRadix2(data, inverse);
  } else {
    FftBluestein(data, inverse);
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (Cplx& value : *data) {
      value *= scale;
    }
  }
  return Status::Ok();
}

std::vector<Cplx> DirectDft(std::span<const Cplx> input, bool inverse) {
  const int64_t n = static_cast<int64_t>(input.size());
  std::vector<Cplx> output(static_cast<size_t>(n), Cplx(0.0, 0.0));
  const double sign = inverse ? 1.0 : -1.0;
  for (int64_t k = 0; k < n; ++k) {
    Cplx sum(0.0, 0.0);
    for (int64_t t = 0; t < n; ++t) {
      const double angle = sign * 2.0 * kPi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      sum += input[static_cast<size_t>(t)] *
             Cplx(std::cos(angle), std::sin(angle));
    }
    output[static_cast<size_t>(k)] =
        inverse ? sum / static_cast<double>(n) : sum;
  }
  return output;
}

Result<std::vector<Cplx>> RealDft(std::span<const double> input) {
  if (input.empty()) {
    return Status::InvalidArgument("RealDft: empty input");
  }
  const int64_t n = static_cast<int64_t>(input.size());
  std::vector<Cplx> buffer(input.size());
  for (size_t t = 0; t < input.size(); ++t) {
    buffer[t] = Cplx(input[t], 0.0);
  }
  RETURN_IF_ERROR(Fft(&buffer, /*inverse=*/false));
  buffer.resize(static_cast<size_t>(n / 2 + 1));
  return buffer;
}

Result<std::vector<double>> InverseRealDft(std::span<const Cplx> spectrum,
                                           int64_t n) {
  if (n <= 0) {
    return Status::InvalidArgument("InverseRealDft: n must be positive");
  }
  const int64_t expected = n / 2 + 1;
  if (static_cast<int64_t>(spectrum.size()) != expected) {
    return Status::InvalidArgument("InverseRealDft: expected ", expected,
                                   " half-spectrum coefficients for n=", n,
                                   ", got ", spectrum.size());
  }
  constexpr double kImagTolerance = 1e-9;
  if (std::fabs(spectrum[0].imag()) > kImagTolerance) {
    return Status::InvalidArgument(
        "InverseRealDft: DC coefficient must be real");
  }
  if (n % 2 == 0 &&
      std::fabs(spectrum[static_cast<size_t>(n / 2)].imag()) >
          kImagTolerance) {
    return Status::InvalidArgument(
        "InverseRealDft: Nyquist coefficient must be real for even n");
  }

  // Expand to the full Hermitian spectrum and run one inverse FFT. The
  // Hermitian structure guarantees the imaginary parts cancel, so we read
  // back only the real parts — the "complex space to real space" transition
  // of the paper's variant.
  std::vector<Cplx> full(static_cast<size_t>(n));
  for (int64_t k = 0; k < expected; ++k) {
    full[static_cast<size_t>(k)] = spectrum[static_cast<size_t>(k)];
  }
  for (int64_t k = expected; k < n; ++k) {
    full[static_cast<size_t>(k)] =
        std::conj(spectrum[static_cast<size_t>(n - k)]);
  }
  RETURN_IF_ERROR(Fft(&full, /*inverse=*/true));

  std::vector<double> output(static_cast<size_t>(n));
  for (int64_t t = 0; t < n; ++t) {
    output[static_cast<size_t>(t)] = full[static_cast<size_t>(t)].real();
  }
  return output;
}

double HalfSpectrumEnergy(std::span<const Cplx> spectrum, int64_t n) {
  double energy = 0.0;
  const int64_t half = static_cast<int64_t>(spectrum.size());
  for (int64_t k = 0; k < half; ++k) {
    const double mag2 = std::norm(spectrum[static_cast<size_t>(k)]);
    // Interior coefficients appear twice in the full spectrum (k and n-k);
    // DC and (for even n) Nyquist appear once.
    const bool doubled = k != 0 && !(n % 2 == 0 && k == n / 2);
    energy += doubled ? 2.0 * mag2 : mag2;
  }
  return energy;
}

}  // namespace dangoron
