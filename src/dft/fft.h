#ifndef DANGORON_DFT_FFT_H_
#define DANGORON_DFT_FFT_H_

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace dangoron {

/// In-place discrete Fourier transform of arbitrary length.
///
/// Forward transform: X_k = sum_t x_t * exp(-2*pi*i*k*t/n)  (unnormalized).
/// Inverse transform: x_t = (1/n) * sum_k X_k * exp(+2*pi*i*k*t/n).
///
/// Power-of-two sizes use the iterative radix-2 algorithm; other sizes use
/// Bluestein's chirp-z reduction to a power-of-two convolution, so every
/// length runs in O(n log n). Length 0 is an error.
Status Fft(std::vector<std::complex<double>>* data, bool inverse);

/// O(n^2) direct evaluation of the same transform; the test oracle for Fft.
std::vector<std::complex<double>> DirectDft(
    std::span<const std::complex<double>> input, bool inverse);

/// Forward DFT of a real series, returning the non-redundant half spectrum:
/// n real values -> floor(n/2) + 1 complex coefficients (X_0 .. X_{n/2}).
/// The discarded upper half is determined by Hermitian symmetry
/// X_{n-k} = conj(X_k).
Result<std::vector<std::complex<double>>> RealDft(
    std::span<const double> input);

/// The paper's real-valued inverse DFT: maps a half spectrum (as produced by
/// RealDft) of an intended length-`n` real series back to the n real values,
/// moving from complex space directly to real space.
///
/// Requirements for an exactly real reconstruction (violations are reported
/// as InvalidArgument): `spectrum.size() == n/2 + 1`, `Im(X_0) == 0`, and for
/// even n, `Im(X_{n/2}) == 0`.
Result<std::vector<double>> InverseRealDft(
    std::span<const std::complex<double>> spectrum, int64_t n);

/// Sum of |X_k|^2 over the full implied spectrum of a half spectrum; equals
/// n * sum x_t^2 by Parseval (used by tests and by Tomborg's energy checks).
double HalfSpectrumEnergy(std::span<const std::complex<double>> spectrum,
                          int64_t n);

}  // namespace dangoron

#endif  // DANGORON_DFT_FFT_H_
