#include "sketch/basic_window_index.h"

#include <algorithm>
#include <cmath>
#include <new>
#include <optional>

#include "common/logging.h"
#include "common/sync.h"
#include "common/math_utils.h"
#include "corr/block_kernel.h"
#include "corr/pearson.h"

namespace dangoron {

namespace {

// Process-wide recycler for the big pair-prefix blocks. A fresh allocation
// of this size is served by mmap, and every page costs a fault plus kernel
// zeroing on first touch — for production-scale sketches that is a full
// extra sweep of memory bandwidth per rebuild, larger than the build's own
// arithmetic. Keeping a handful of retired blocks warm turns rebuilds into
// pure overwrites. Thread-safe; exact-size matching.
class SketchStorageRecycler {
 public:
  static SketchStorageRecycler& Instance() {
    static SketchStorageRecycler* recycler = new SketchStorageRecycler();
    return *recycler;
  }

  std::unique_ptr<double[]> Acquire(size_t size) {
    {
      MutexLock lock(mutex_);
      for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
        if (it->first == size) {
          std::unique_ptr<double[]> block = std::move(it->second);
          retained_bytes_ -= size * sizeof(double);
          blocks_.erase(it);
          return block;
        }
      }
    }
    return std::make_unique_for_overwrite<double[]>(size);
  }

  void Release(std::unique_ptr<double[]> block, size_t size) {
    if (block == nullptr) {
      return;
    }
    MutexLock lock(mutex_);
    // Keep the newest blocks: rebuild loops retire and re-acquire the same
    // sizes back to back, so recency, not first-come, is what predicts
    // reuse. Retention is strictly bounded by count and bytes — a build
    // whose blocks alone exceed the byte budget gets no recycling rather
    // than pinning multi-GB dead memory for the process lifetime.
    blocks_.emplace_back(size, std::move(block));
    retained_bytes_ += size * sizeof(double);
    while (!blocks_.empty() && (blocks_.size() > kMaxBlocks ||
                                retained_bytes_ > kMaxRetainedBytes)) {
      retained_bytes_ -= blocks_.front().first * sizeof(double);
      blocks_.erase(blocks_.begin());
    }
  }

  size_t retained_bytes() {
    MutexLock lock(mutex_);
    return retained_bytes_;
  }

  void Trim() {
    MutexLock lock(mutex_);
    blocks_.clear();
    retained_bytes_ = 0;
  }

 private:
  // Two builds' worth (each build retires two blocks).
  static constexpr size_t kMaxBlocks = 4;
  static constexpr size_t kMaxRetainedBytes = size_t{512} << 20;

  Mutex mutex_;
  std::vector<std::pair<size_t, std::unique_ptr<double[]>>> blocks_
      GUARDED_BY(mutex_);
  size_t retained_bytes_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int64_t SketchRecyclerRetainedBytes() {
  return static_cast<int64_t>(SketchStorageRecycler::Instance().retained_bytes());
}

void TrimSketchRecycler() { SketchStorageRecycler::Instance().Trim(); }

BasicWindowIndex::~BasicWindowIndex() {
  SketchStorageRecycler::Instance().Release(std::move(pair_dot_storage_),
                                            pair_storage_size_);
  SketchStorageRecycler::Instance().Release(std::move(pair_omc_storage_),
                                            pair_storage_size_);
}

BasicWindowIndex& BasicWindowIndex::operator=(
    BasicWindowIndex&& other) noexcept {
  if (this != &other) {
    // Destroy-and-move-construct: the destructor recycles this index's
    // sketch storage, and the defaulted move constructor keeps tracking
    // members without a hand-maintained member list.
    this->~BasicWindowIndex();
    new (this) BasicWindowIndex(std::move(other));
  }
  return *this;
}

int64_t BasicWindowIndex::PairId(int64_t i, int64_t j, int64_t num_series) {
  DCHECK_NE(i, j);
  if (i > j) {
    std::swap(i, j);
  }
  DCHECK_GE(i, 0);
  DCHECK_LT(j, num_series);
  // Row-major upper triangle: offset of row i plus column displacement.
  return i * (2 * num_series - i - 1) / 2 + (j - i - 1);
}

void BasicWindowIndex::PairFromId(int64_t pair_id, int64_t num_series,
                                  int64_t* i, int64_t* j) {
  DCHECK_GE(pair_id, 0);
  DCHECK_LT(pair_id, num_series * (num_series - 1) / 2);
  // Closed-form inversion of the triangular layout. Counting q pairs from
  // the *end*, rows fill a lower triangle: the last row (i = n-2) holds 1
  // pair, the one before it 2, ... so the row counted-from-the-end is the
  // triangular root k of q, and (i, j) follow in O(1).
  const int64_t q = num_series * (num_series - 1) / 2 - 1 - pair_id;
  int64_t k = static_cast<int64_t>(
      (std::sqrt(8.0 * static_cast<double>(q) + 1.0) - 1.0) / 2.0);
  // The sqrt can land one off for huge ids; nudge onto the exact row.
  while ((k + 1) * (k + 2) / 2 <= q) {
    ++k;
  }
  while (k * (k + 1) / 2 > q) {
    --k;
  }
  *i = num_series - 2 - k;
  *j = num_series - 1 - (q - k * (k + 1) / 2);
}

Result<BasicWindowIndex> BasicWindowIndex::Build(
    const TimeSeriesMatrix& data, const BasicWindowIndexOptions& options,
    ThreadPool* pool) {
  if (data.empty()) {
    return Status::InvalidArgument("BasicWindowIndex: empty matrix");
  }
  if (options.basic_window <= 0) {
    return Status::InvalidArgument("BasicWindowIndex: basic_window must be > 0");
  }
  if (data.length() < options.basic_window) {
    return Status::InvalidArgument("BasicWindowIndex: series length ",
                                   data.length(),
                                   " shorter than one basic window of ",
                                   options.basic_window);
  }
  if (data.CountMissing() > 0) {
    return Status::FailedPrecondition(
        "BasicWindowIndex: data contains missing values; run "
        "InterpolateMissing first");
  }

  BasicWindowIndex index;
  index.data_ = &data;
  index.basic_window_ = options.basic_window;
  index.num_basic_windows_ = data.length() / options.basic_window;
  index.num_series_ = data.num_series();
  index.num_pairs_ = data.num_series() * (data.num_series() - 1) / 2;
  index.has_pair_sketches_ = options.build_pair_sketches;

  const int64_t nb = index.num_basic_windows_;
  const int64_t b = index.basic_window_;
  const int64_t n = index.num_series_;

  const bool threaded = pool != nullptr && pool->num_threads() > 1;
  auto parallel_for = [&](int64_t count,
                          const std::function<void(int64_t)>& body) {
    if (threaded && count > 1) {
      pool->ParallelFor(count, body);
    } else {
      for (int64_t v = 0; v < count; ++v) {
        body(v);
      }
    }
  };

  const bool blocked = options.build_pair_sketches && options.use_blocked_kernel;

  // Per-series prefixes.
  index.series_sum_prefix_.assign(static_cast<size_t>(n * (nb + 1)), 0.0);
  index.series_sumsq_prefix_.assign(static_cast<size_t>(n * (nb + 1)), 0.0);
  std::optional<NormalizedPanels> panels;
  if (blocked) {
    // The panel normalization already computed every window's mean and
    // std-dev; the prefixes fold from those stats instead of re-scanning
    // the raw matrix (window sum = b * mean, window sum of squares =
    // b * (sd^2 + mean^2), exact up to one rounding).
    panels = BuildNormalizedPanels(data, b, pool);
    parallel_for(n, [&](int64_t s) {
      const double bw = static_cast<double>(b);
      double sum_acc = 0.0;
      double sumsq_acc = 0.0;
      index.series_sum_prefix_[index.Sx(s, 0)] = 0.0;
      index.series_sumsq_prefix_[index.Sx(s, 0)] = 0.0;
      for (int64_t w = 0; w < nb; ++w) {
        const double mean = panels->mean[static_cast<size_t>(w * n + s)];
        const double sd = panels->stddev[static_cast<size_t>(w * n + s)];
        sum_acc += bw * mean;
        sumsq_acc += bw * (sd * sd + mean * mean);
        index.series_sum_prefix_[index.Sx(s, w + 1)] = sum_acc;
        index.series_sumsq_prefix_[index.Sx(s, w + 1)] = sumsq_acc;
      }
    });
  } else {
    parallel_for(n, [&](int64_t s) {
      std::span<const double> row = data.Row(s);
      double sum_acc = 0.0;
      double sumsq_acc = 0.0;
      index.series_sum_prefix_[index.Sx(s, 0)] = 0.0;
      index.series_sumsq_prefix_[index.Sx(s, 0)] = 0.0;
      for (int64_t w = 0; w < nb; ++w) {
        for (int64_t t = w * b; t < (w + 1) * b; ++t) {
          const double v = row[static_cast<size_t>(t)];
          sum_acc += v;
          sumsq_acc += v * v;
        }
        index.series_sum_prefix_[index.Sx(s, w + 1)] = sum_acc;
        index.series_sumsq_prefix_[index.Sx(s, w + 1)] = sumsq_acc;
      }
    });
  }

  if (!options.build_pair_sketches) {
    return index;
  }

  // Pair rows: pad + round the stride to a multiple of 8 doubles so the
  // build's 8-window batch stores are full aligned cache lines; bases are
  // aligned up to 64 bytes inside a slightly oversized allocation drawn
  // from the storage recycler.
  index.pair_row_stride_ = (nb + 1 + kPairRowPad + 7) / 8 * 8;
  index.pair_prefix_size_ =
      static_cast<size_t>(index.num_pairs_ * index.pair_row_stride_);
  constexpr size_t kAlignSlack = 7;  // doubles; one cache line of headroom
  index.pair_storage_size_ = index.pair_prefix_size_ + kAlignSlack;
  index.pair_dot_storage_ =
      SketchStorageRecycler::Instance().Acquire(index.pair_storage_size_);
  index.pair_omc_storage_ =
      SketchStorageRecycler::Instance().Acquire(index.pair_storage_size_);
  auto align64 = [](double* p) {
    return reinterpret_cast<double*>(
        (reinterpret_cast<uintptr_t>(p) + 63) & ~uintptr_t{63});
  };
  index.pair_dot_prefix_ = align64(index.pair_dot_storage_.get());
  index.pair_one_minus_corr_prefix_ = align64(index.pair_omc_storage_.get());

  if (blocked) {
    index.BuildPairSketchesBlocked(*panels, pool);
  } else {
    // Seed-faithful reference baseline, including the seed's
    // zero-initialized allocation of the sketch arrays.
    std::fill_n(index.pair_dot_prefix_, index.pair_prefix_size_, 0.0);
    std::fill_n(index.pair_one_minus_corr_prefix_, index.pair_prefix_size_,
                0.0);
    index.BuildPairSketchesScalar(data, pool);
  }
  return index;
}

void BasicWindowIndex::BuildPairSketchesScalar(const TimeSeriesMatrix& data,
                                               ThreadPool* pool) {
  const int64_t nb = num_basic_windows_;
  const int64_t b = basic_window_;
  const int64_t n = num_series_;

  // The seed's reference path: one scalar dot loop per (pair, basic window),
  // walking pairs row by row. Kept as the equivalence oracle for the blocked
  // kernel and as the baseline of bench_microkernels.
  auto build_row = [&](int64_t i) {
    std::span<const double> xi = data.Row(i);
    for (int64_t j = i + 1; j < n; ++j) {
      std::span<const double> xj = data.Row(j);
      const int64_t p = PairId(i, j, n);
      double dot_acc = 0.0;
      double omc_acc = 0.0;
      pair_dot_prefix_[Px(p, 0)] = 0.0;
      pair_one_minus_corr_prefix_[Px(p, 0)] = 0.0;
      for (int64_t w = 0; w < nb; ++w) {
        double dot = 0.0;
        for (int64_t t = w * b; t < (w + 1) * b; ++t) {
          dot += xi[static_cast<size_t>(t)] * xj[static_cast<size_t>(t)];
        }
        dot_acc += dot;
        pair_dot_prefix_[Px(p, w + 1)] = dot_acc;

        // Basic-window correlation c_w from the already built per-series
        // prefixes plus this window's dot.
        const double sx = SumRange(i, w, w + 1);
        const double sy = SumRange(j, w, w + 1);
        const double sxx = SumSqRange(i, w, w + 1);
        const double syy = SumSqRange(j, w, w + 1);
        const double c =
            PearsonFromMoments(static_cast<double>(b), sx, sy, sxx, syy, dot);
        omc_acc += 1.0 - c;
        pair_one_minus_corr_prefix_[Px(p, w + 1)] = omc_acc;
      }
    }
  };

  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(n, [&](int64_t i) { build_row(i); });
  } else {
    for (int64_t i = 0; i < n; ++i) {
      build_row(i);
    }
  }
}

void BasicWindowIndex::BuildPairSketchesBlocked(const NormalizedPanels& panels,
                                                ThreadPool* pool) {
  const int64_t nb = num_basic_windows_;
  const int64_t b = basic_window_;
  const int64_t n = num_series_;
  const bool threaded = pool != nullptr && pool->num_threads() > 1;

  // For each basic window, the N x N correlation tile is the Gram
  // matrix of the window's z panels — a blocked rank-b update. One task per
  // series-tile pair; the task sweeps *all* basic windows, carrying the
  // running prefix of every pair it owns in an L1-resident accumulator
  // block, so each prefix slot is written exactly once, in its final form.
  // Windows are processed in batches of kWinBatch: the batch's Gram planes
  // are computed first, then each pair's kWinBatch prefix slots leave as
  // one contiguous (single cache line) write through an in-register 8x8
  // transpose. Every (pair, window) slot is written by exactly one task and
  // the per-cell arithmetic is independent of the decomposition, so any
  // thread count produces bit-identical sketches.
  constexpr int64_t kWinBatch = 8;
  const int64_t num_row_tiles = panels.num_tiles;
  std::vector<std::pair<int64_t, int64_t>> tile_pairs;
  tile_pairs.reserve(
      static_cast<size_t>(num_row_tiles * (num_row_tiles + 1) / 2));
  for (int64_t ti = 0; ti < num_row_tiles; ++ti) {
    for (int64_t tj = ti; tj < num_row_tiles; ++tj) {
      tile_pairs.emplace_back(ti, tj);
    }
  }

  auto run_task = [&](int64_t task) {
    const auto [ti, tj] = tile_pairs[static_cast<size_t>(task)];
    const int64_t row_begin = ti * kCorrTile;
    const int64_t row_end = std::min(n, row_begin + kCorrTile);
    const int64_t col_begin = tj * kCorrTile;
    const int64_t col_end = std::min(n, col_begin + kCorrTile);
    const int64_t nrows = row_end - row_begin;
    const double bw = static_cast<double>(b);
    double acc_dot[kCorrTile * kCorrTile];
    double acc_omc[kCorrTile * kCorrTile];
    // Window-major staging: plane k holds window wb + k's Gram tile,
    // written directly by the kernel; the flush below reads the kWinBatch
    // planes as parallel sequential streams.
    const int64_t plane = nrows * kCorrTile;
    std::vector<double> gram_batch(static_cast<size_t>(plane * kWinBatch));
    // Per-batch window stats. Row stats are [series-in-tile][k] (read as
    // scalars per output row) and carry the b factor of the reconstruction;
    // column stats are [k][series-in-tile] so the pair-vectorized flush
    // reads them as contiguous vectors.
    double row_bsd[kCorrTile * kWinBatch];
    double row_bm[kCorrTile * kWinBatch];
    double col_sd[kWinBatch * kCorrTile];
    double col_m[kWinBatch * kCorrTile];

    // Prefix slot 0 and the running accumulators of every owned pair.
    for (int64_t i = row_begin; i < row_end; ++i) {
      const int64_t j0 = std::max(col_begin, i + 1);
      if (j0 >= col_end) {
        continue;
      }
      int64_t p = PairId(i, j0, n);
      for (int64_t j = j0; j < col_end; ++j, ++p) {
        const size_t idx =
            static_cast<size_t>((i - row_begin) * kCorrTile + (j - col_begin));
        acc_dot[idx] = 0.0;
        acc_omc[idx] = 0.0;
        pair_dot_prefix_[Px(p, 0)] = 0.0;
        pair_one_minus_corr_prefix_[Px(p, 0)] = 0.0;
      }
    }

    for (int64_t wb = 0; wb < nb; wb += kWinBatch) {
      const int64_t wc = std::min<int64_t>(kWinBatch, nb - wb);
      for (int64_t k = 0; k < wc; ++k) {
        const int64_t w = wb + k;
        GramPanelTile(panels.Panel(w, ti), kCorrTile, nrows,
                      panels.Panel(w, tj), kCorrTile, col_end - col_begin, 0,
                      b, /*upper_only=*/tj == ti,
                      /*diag=*/row_begin - col_begin,
                      gram_batch.data() + k * plane, kCorrTile);
        const double* means = panels.mean.data() + w * n;
        const double* stddevs = panels.stddev.data() + w * n;
        for (int64_t v = 0; v < nrows; ++v) {
          row_bsd[v * kWinBatch + k] = bw * stddevs[row_begin + v];
          row_bm[v * kWinBatch + k] = bw * means[row_begin + v];
        }
        for (int64_t u = 0; u < col_end - col_begin; ++u) {
          col_sd[k * kCorrTile + u] = stddevs[col_begin + u];
          col_m[k * kCorrTile + u] = means[col_begin + u];
        }
      }

      // Flush: fold the batch into each pair's running prefixes and write
      // the wc slots [wb + 1, wb + wc] of each pair in one contiguous run.
      // The raw inner product the sketch stores is reconstructed as
      // sum x*y = b * (sd_x sd_y c + mean_x mean_y) — algebraically exact;
      // the clamped correlation feeds the Eq. 2 jump budget.
      //
      // Vectorized over 8 adjacent pairs (contiguous in the Gram planes,
      // the accumulators, and the column stats): the k recursion is a
      // serial dependence per pair, so running it 8 pairs wide is what
      // hides its latency. The per-window Vec8 snapshots are transposed in
      // registers so each pair's prefix run leaves as one full-width store;
      // a scalar loop finishes ragged pair tails and ragged final batches.
      for (int64_t i = row_begin; i < row_end; ++i) {
        const int64_t j0 = std::max(col_begin, i + 1);
        if (j0 >= col_end) {
          continue;
        }
        const int64_t njs = col_end - j0;
        const double* rbsd = row_bsd + (i - row_begin) * kWinBatch;
        const double* rbm = row_bm + (i - row_begin) * kWinBatch;
        const int64_t p0 = PairId(i, j0, n);
        const size_t idx0 = static_cast<size_t>((i - row_begin) * kCorrTile +
                                                (j0 - col_begin));
        int64_t u = 0;
        if (wc == kWinBatch) {
          const Vec8 kOne = SplatVec8(1.0);
          const Vec8 kNegOne = SplatVec8(-1.0);
          for (; u + 8 <= njs; u += 8) {
            const size_t idx = idx0 + static_cast<size_t>(u);
            Vec8 dacc = LoadVec8(acc_dot + idx);
            Vec8 oacc = LoadVec8(acc_omc + idx);
            Vec8 dsnap[kWinBatch];
            Vec8 osnap[kWinBatch];
            const int64_t uc = (j0 - col_begin) + u;
            for (int64_t k = 0; k < kWinBatch; ++k) {
              const Vec8 raw = LoadVec8(gram_batch.data() + k * plane + idx);
              dacc += SplatVec8(rbsd[k]) *
                          LoadVec8(col_sd + k * kCorrTile + uc) * raw +
                      SplatVec8(rbm[k]) * LoadVec8(col_m + k * kCorrTile + uc);
              const Vec8 hi = raw > kOne ? kOne : raw;
              const Vec8 clamped = hi < kNegOne ? kNegOne : hi;
              oacc += kOne - clamped;
              dsnap[k] = dacc;
              osnap[k] = oacc;
            }
            StoreVec8(acc_dot + idx, dacc);
            StoreVec8(acc_omc + idx, oacc);
            Transpose8x8(dsnap);
            Transpose8x8(osnap);
            for (int64_t v = 0; v < 8; ++v) {
              StreamVec8(pair_dot_prefix_ + Px(p0 + u + v, wb + 1), dsnap[v]);
              StreamVec8(pair_one_minus_corr_prefix_ + Px(p0 + u + v, wb + 1),
                         osnap[v]);
            }
          }
        }
        for (; u < njs; ++u) {
          const size_t idx = idx0 + static_cast<size_t>(u);
          const double* g = gram_batch.data() + idx;
          const double* csd = col_sd + (j0 - col_begin) + u;
          const double* cm = col_m + (j0 - col_begin) + u;
          double dacc = acc_dot[idx];
          double oacc = acc_omc[idx];
          double* dot_out = pair_dot_prefix_ + Px(p0 + u, wb + 1);
          double* omc_out =
              pair_one_minus_corr_prefix_ + Px(p0 + u, wb + 1);
          for (int64_t k = 0; k < wc; ++k) {
            const double raw = g[k * plane];
            dacc +=
                rbsd[k] * csd[k * kCorrTile] * raw + rbm[k] * cm[k * kCorrTile];
            oacc += 1.0 - ClampCorrelation(raw);
            dot_out[k] = dacc;
            omc_out[k] = oacc;
          }
          acc_dot[idx] = dacc;
          acc_omc[idx] = oacc;
        }
      }
    }
    // Drain the non-temporal stores before the pool's completion handshake
    // publishes this task's rows to other threads.
    StreamFence();
  };
  const int64_t num_tasks = static_cast<int64_t>(tile_pairs.size());
  if (threaded && num_tasks > 1) {
    pool->ParallelFor(num_tasks, run_task);
  } else {
    for (int64_t task = 0; task < num_tasks; ++task) {
      run_task(task);
    }
  }
}

double BasicWindowIndex::WindowMean(int64_t s, int64_t w) const {
  return SumRange(s, w, w + 1) / static_cast<double>(basic_window_);
}

double BasicWindowIndex::WindowStdDev(int64_t s, int64_t w) const {
  const double n = static_cast<double>(basic_window_);
  const double mean = SumRange(s, w, w + 1) / n;
  const double var = SumSqRange(s, w, w + 1) / n - mean * mean;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double BasicWindowIndex::PairWindowCorrelation(int64_t p, int64_t w) const {
  DCHECK(has_pair_sketches_);
  // Recover c_w = 1 - [prefix(w+1) - prefix(w)].
  return 1.0 - OneMinusCorrRange(p, w, w + 1);
}

double BasicWindowIndex::PairRangeCorrelation(int64_t p, int64_t lo,
                                              int64_t hi) const {
  int64_t i = 0;
  int64_t j = 0;
  PairFromId(p, num_series_, &i, &j);
  return PairRangeCorrelationIJ(p, i, j, lo, hi);
}

double BasicWindowIndex::PairRangeCorrelationIJ(int64_t p, int64_t i,
                                                int64_t j, int64_t lo,
                                                int64_t hi) const {
  DCHECK(has_pair_sketches_);
  DCHECK_LT(lo, hi);
  DCHECK_EQ(PairId(i, j, num_series_), p);
  const double n = static_cast<double>((hi - lo) * basic_window_);
  return PearsonFromMoments(n, SumRange(i, lo, hi), SumRange(j, lo, hi),
                            SumSqRange(i, lo, hi), SumSqRange(j, lo, hi),
                            DotRange(p, lo, hi));
}

double BasicWindowIndex::RangeCorrelationFromRaw(int64_t i, int64_t j,
                                                 int64_t lo,
                                                 int64_t hi) const {
  DCHECK_LT(lo, hi);
  const int64_t start = lo * basic_window_;
  const int64_t count = (hi - lo) * basic_window_;
  std::span<const double> x = data_->RowRange(i, start, count);
  std::span<const double> y = data_->RowRange(j, start, count);
  double dot = 0.0;
  for (int64_t t = 0; t < count; ++t) {
    dot += x[static_cast<size_t>(t)] * y[static_cast<size_t>(t)];
  }
  return PearsonFromMoments(static_cast<double>(count),
                            SumRange(i, lo, hi), SumRange(j, lo, hi),
                            SumSqRange(i, lo, hi), SumSqRange(j, lo, hi),
                            dot);
}

int64_t BasicWindowIndex::MemoryBytes() const {
  return static_cast<int64_t>(
      (series_sum_prefix_.size() + series_sumsq_prefix_.size() +
       2 * pair_prefix_size_) *
      sizeof(double));
}

int64_t BasicWindowIndex::EstimateMemoryBytes(
    int64_t num_series, int64_t length,
    const BasicWindowIndexOptions& options) {
  if (num_series <= 0 || options.basic_window <= 0 ||
      length < options.basic_window) {
    return 0;
  }
  const int64_t nb = length / options.basic_window;
  int64_t doubles = 2 * num_series * (nb + 1);  // the two series prefixes
  if (options.build_pair_sketches) {
    // Mirrors Build's padded stride; MemoryBytes counts the prefix slots
    // (not the alignment slack), so this matches the built index exactly.
    const int64_t num_pairs = num_series * (num_series - 1) / 2;
    const int64_t stride = (nb + 1 + kPairRowPad + 7) / 8 * 8;
    doubles += 2 * num_pairs * stride;
  }
  return doubles * static_cast<int64_t>(sizeof(double));
}

}  // namespace dangoron
