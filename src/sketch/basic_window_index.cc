#include "sketch/basic_window_index.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"

namespace dangoron {

namespace {

// Pearson from raw moments over n points; 0 when either side is constant
// (an undefined correlation is reported as "no edge", mirroring how the
// benchmark treats dead sensors).
double PearsonFromMomentsImpl(double n, double sx, double sy, double sxx,
                              double syy, double sxy) {
  const double cov = sxy - sx * sy / n;
  const double var_x = sxx - sx * sx / n;
  const double var_y = syy - sy * sy / n;
  constexpr double kEps = 1e-12;
  if (var_x <= kEps || var_y <= kEps) {
    return 0.0;
  }
  return ClampCorrelation(cov / std::sqrt(var_x * var_y));
}

}  // namespace

int64_t BasicWindowIndex::PairId(int64_t i, int64_t j, int64_t num_series) {
  DCHECK_NE(i, j);
  if (i > j) {
    std::swap(i, j);
  }
  DCHECK_GE(i, 0);
  DCHECK_LT(j, num_series);
  // Row-major upper triangle: offset of row i plus column displacement.
  return i * (2 * num_series - i - 1) / 2 + (j - i - 1);
}

void BasicWindowIndex::PairFromId(int64_t pair_id, int64_t num_series,
                                  int64_t* i, int64_t* j) {
  // Invert the triangular offset by scanning rows; engines call this once
  // per pair block, not per cell, so the O(N) scan is immaterial.
  int64_t row = 0;
  int64_t remaining = pair_id;
  while (remaining >= num_series - row - 1) {
    remaining -= num_series - row - 1;
    ++row;
    DCHECK_LT(row, num_series);
  }
  *i = row;
  *j = row + 1 + remaining;
}

Result<BasicWindowIndex> BasicWindowIndex::Build(
    const TimeSeriesMatrix& data, const BasicWindowIndexOptions& options,
    ThreadPool* pool) {
  if (data.empty()) {
    return Status::InvalidArgument("BasicWindowIndex: empty matrix");
  }
  if (options.basic_window <= 0) {
    return Status::InvalidArgument("BasicWindowIndex: basic_window must be > 0");
  }
  if (data.length() < options.basic_window) {
    return Status::InvalidArgument("BasicWindowIndex: series length ",
                                   data.length(),
                                   " shorter than one basic window of ",
                                   options.basic_window);
  }
  if (data.CountMissing() > 0) {
    return Status::FailedPrecondition(
        "BasicWindowIndex: data contains missing values; run "
        "InterpolateMissing first");
  }

  BasicWindowIndex index;
  index.data_ = &data;
  index.basic_window_ = options.basic_window;
  index.num_basic_windows_ = data.length() / options.basic_window;
  index.num_series_ = data.num_series();
  index.num_pairs_ = data.num_series() * (data.num_series() - 1) / 2;
  index.has_pair_sketches_ = options.build_pair_sketches;

  const int64_t nb = index.num_basic_windows_;
  const int64_t b = index.basic_window_;
  const int64_t n = index.num_series_;

  // Per-series prefixes.
  index.series_sum_prefix_.assign(static_cast<size_t>(n * (nb + 1)), 0.0);
  index.series_sumsq_prefix_.assign(static_cast<size_t>(n * (nb + 1)), 0.0);
  for (int64_t s = 0; s < n; ++s) {
    std::span<const double> row = data.Row(s);
    double sum_acc = 0.0;
    double sumsq_acc = 0.0;
    index.series_sum_prefix_[index.Sx(s, 0)] = 0.0;
    index.series_sumsq_prefix_[index.Sx(s, 0)] = 0.0;
    for (int64_t w = 0; w < nb; ++w) {
      for (int64_t t = w * b; t < (w + 1) * b; ++t) {
        const double v = row[static_cast<size_t>(t)];
        sum_acc += v;
        sumsq_acc += v * v;
      }
      index.series_sum_prefix_[index.Sx(s, w + 1)] = sum_acc;
      index.series_sumsq_prefix_[index.Sx(s, w + 1)] = sumsq_acc;
    }
  }

  if (!options.build_pair_sketches) {
    return index;
  }

  index.pair_dot_prefix_.assign(
      static_cast<size_t>(index.num_pairs_ * (nb + 1)), 0.0);
  index.pair_one_minus_corr_prefix_.assign(
      static_cast<size_t>(index.num_pairs_ * (nb + 1)), 0.0);

  // One block per first-series row keeps blocks coarse and cache friendly:
  // row i covers pairs (i, i+1..n-1) whose ids are contiguous.
  auto build_row = [&](int64_t i) {
    std::span<const double> xi = data.Row(i);
    for (int64_t j = i + 1; j < n; ++j) {
      std::span<const double> xj = data.Row(j);
      const int64_t p = PairId(i, j, n);
      double dot_acc = 0.0;
      double omc_acc = 0.0;
      index.pair_dot_prefix_[index.Px(p, 0)] = 0.0;
      index.pair_one_minus_corr_prefix_[index.Px(p, 0)] = 0.0;
      for (int64_t w = 0; w < nb; ++w) {
        double dot = 0.0;
        for (int64_t t = w * b; t < (w + 1) * b; ++t) {
          dot += xi[static_cast<size_t>(t)] * xj[static_cast<size_t>(t)];
        }
        dot_acc += dot;
        index.pair_dot_prefix_[index.Px(p, w + 1)] = dot_acc;

        // Basic-window correlation c_w from the already built per-series
        // prefixes plus this window's dot.
        const double sx = index.SumRange(i, w, w + 1);
        const double sy = index.SumRange(j, w, w + 1);
        const double sxx = index.SumSqRange(i, w, w + 1);
        const double syy = index.SumSqRange(j, w, w + 1);
        const double c = PearsonFromMomentsImpl(static_cast<double>(b), sx,
                                                sy, sxx, syy, dot);
        omc_acc += 1.0 - c;
        index.pair_one_minus_corr_prefix_[index.Px(p, w + 1)] = omc_acc;
      }
    }
  };

  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(n, [&](int64_t i) { build_row(i); });
  } else {
    for (int64_t i = 0; i < n; ++i) {
      build_row(i);
    }
  }
  return index;
}

double BasicWindowIndex::WindowMean(int64_t s, int64_t w) const {
  return SumRange(s, w, w + 1) / static_cast<double>(basic_window_);
}

double BasicWindowIndex::WindowStdDev(int64_t s, int64_t w) const {
  const double n = static_cast<double>(basic_window_);
  const double mean = SumRange(s, w, w + 1) / n;
  const double var = SumSqRange(s, w, w + 1) / n - mean * mean;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double BasicWindowIndex::PairWindowCorrelation(int64_t p, int64_t w) const {
  DCHECK(has_pair_sketches_);
  // Recover c_w = 1 - [prefix(w+1) - prefix(w)].
  return 1.0 - OneMinusCorrRange(p, w, w + 1);
}

double BasicWindowIndex::PairRangeCorrelation(int64_t p, int64_t lo,
                                              int64_t hi) const {
  int64_t i = 0;
  int64_t j = 0;
  PairFromId(p, num_series_, &i, &j);
  return PairRangeCorrelationIJ(p, i, j, lo, hi);
}

double BasicWindowIndex::PairRangeCorrelationIJ(int64_t p, int64_t i,
                                                int64_t j, int64_t lo,
                                                int64_t hi) const {
  DCHECK(has_pair_sketches_);
  DCHECK_LT(lo, hi);
  DCHECK_EQ(PairId(i, j, num_series_), p);
  const double n = static_cast<double>((hi - lo) * basic_window_);
  return PearsonFromMomentsImpl(n, SumRange(i, lo, hi), SumRange(j, lo, hi),
                                SumSqRange(i, lo, hi), SumSqRange(j, lo, hi),
                                DotRange(p, lo, hi));
}

double BasicWindowIndex::RangeCorrelationFromRaw(int64_t i, int64_t j,
                                                 int64_t lo,
                                                 int64_t hi) const {
  DCHECK_LT(lo, hi);
  const int64_t start = lo * basic_window_;
  const int64_t count = (hi - lo) * basic_window_;
  std::span<const double> x = data_->RowRange(i, start, count);
  std::span<const double> y = data_->RowRange(j, start, count);
  double dot = 0.0;
  for (int64_t t = 0; t < count; ++t) {
    dot += x[static_cast<size_t>(t)] * y[static_cast<size_t>(t)];
  }
  return PearsonFromMomentsImpl(static_cast<double>(count),
                                SumRange(i, lo, hi), SumRange(j, lo, hi),
                                SumSqRange(i, lo, hi), SumSqRange(j, lo, hi),
                                dot);
}

int64_t BasicWindowIndex::MemoryBytes() const {
  return static_cast<int64_t>(
      (series_sum_prefix_.size() + series_sumsq_prefix_.size() +
       pair_dot_prefix_.size() + pair_one_minus_corr_prefix_.size()) *
      sizeof(double));
}

}  // namespace dangoron
