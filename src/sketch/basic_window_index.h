#ifndef DANGORON_SKETCH_BASIC_WINDOW_INDEX_H_
#define DANGORON_SKETCH_BASIC_WINDOW_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "corr/block_kernel.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

/// Options for building a BasicWindowIndex.
struct BasicWindowIndexOptions {
  /// Size `b` of each basic window (columns). The series is cut into
  /// floor(L / b) full basic windows; a ragged tail is ignored by the index
  /// (engines handle it from raw data when needed).
  int64_t basic_window = 24;
  /// When true, per-pair sketches (inner products and the Eq. 2 jump prefix)
  /// are built: O(N^2 * nb) memory. Engines that only need per-series
  /// statistics can turn this off.
  bool build_pair_sketches = true;
  /// Build the pair sketches with the blocked z-normalized Gram kernel
  /// (default): each basic window's N x N correlation tile is computed as a
  /// cache-blocked rank-b update over per-window z-normalized data. Turn off
  /// to use the seed's per-pair scalar loop — the equivalence oracle of the
  /// kernel tests and the baseline of bench_microkernels; both paths agree
  /// within 1e-9 and each is bit-deterministic across thread counts.
  bool use_blocked_kernel = true;
};

/// The basic-window sketch of the paper (Section 3): per-series and per-pair
/// statistics at basic-window granularity, with prefix sums along the
/// basic-window axis so any *aligned* range statistic is O(1).
///
/// Layout notes:
/// - Pairs (i, j), i < j, are addressed by a canonical dense id, see PairId.
/// - All prefix arrays have nb + 1 entries per series/pair, so a range
///   [lo, hi) reduces to two loads and a subtract.
///
/// The index borrows the data matrix; it must outlive the index.
class BasicWindowIndex {
 public:
  /// Builds the index over all columns of `data`. When `pool` is non-null,
  /// pair sketches are built in parallel. Fails when the matrix is empty,
  /// contains NaN (interpolate first), or is shorter than one basic window.
  static Result<BasicWindowIndex> Build(
      const TimeSeriesMatrix& data, const BasicWindowIndexOptions& options,
      ThreadPool* pool = nullptr);

  /// Returns sketch storage to the process-wide recycler (see .cc): a
  /// rebuild-heavy workload re-faulting hundreds of MB of freshly mmapped
  /// pages per build would otherwise spend more time in the kernel's page
  /// zeroing than in the kernels.
  ~BasicWindowIndex();
  BasicWindowIndex(BasicWindowIndex&&) noexcept = default;
  /// Recycles the assignee's previous sketch storage before taking over
  /// `other`'s — a defaulted move would free it through plain unique_ptr
  /// deletion, silently bypassing the recycler in the engine re-Prepare
  /// loop it exists for.
  BasicWindowIndex& operator=(BasicWindowIndex&& other) noexcept;

  int64_t basic_window() const { return basic_window_; }
  int64_t num_basic_windows() const { return num_basic_windows_; }
  int64_t num_series() const { return num_series_; }
  int64_t num_pairs() const { return num_pairs_; }
  bool has_pair_sketches() const { return has_pair_sketches_; }
  const TimeSeriesMatrix& data() const { return *data_; }

  /// Canonical id of pair (i, j), i != j, in [0, N*(N-1)/2).
  static int64_t PairId(int64_t i, int64_t j, int64_t num_series);

  /// Inverse of PairId, in O(1) via the closed-form triangular root.
  static void PairFromId(int64_t pair_id, int64_t num_series, int64_t* i,
                         int64_t* j);

  // --- per-series, basic-window-aligned range statistics (O(1)) ---

  /// Sum of series `s` over basic windows [lo, hi).
  double SumRange(int64_t s, int64_t lo, int64_t hi) const {
    return series_sum_prefix_[Sx(s, hi)] - series_sum_prefix_[Sx(s, lo)];
  }
  /// Sum of squares of series `s` over basic windows [lo, hi).
  double SumSqRange(int64_t s, int64_t lo, int64_t hi) const {
    return series_sumsq_prefix_[Sx(s, hi)] - series_sumsq_prefix_[Sx(s, lo)];
  }

  /// Mean of series `s` within basic window `w` (for Eq. 1).
  double WindowMean(int64_t s, int64_t w) const;
  /// Population standard deviation of series `s` within basic window `w`.
  double WindowStdDev(int64_t s, int64_t w) const;

  // --- per-pair statistics (require pair sketches) ---

  /// Inner product sum_t x_t * y_t of pair `p` over basic windows [lo, hi).
  double DotRange(int64_t p, int64_t lo, int64_t hi) const {
    return pair_dot_prefix_[Px(p, hi)] - pair_dot_prefix_[Px(p, lo)];
  }

  /// Raw view of the pair dot-prefix block for the window-major sweep
  /// kernel (corr/sweep_kernel.h): prefix slot w of pair p sits at
  /// `PairDotPrefix()[p * PairDotRowStride() + w]`, so DotRange(p, lo, hi)
  /// is the hi/lo slot difference. Requires pair sketches; valid while the
  /// index is alive.
  const double* PairDotPrefix() const { return pair_dot_prefix_ + kPairRowPad; }
  int64_t PairDotRowStride() const { return pair_row_stride_; }

  /// Pearson correlation of the pair within basic window `w` (the `c_i` of
  /// Eq. 1 / Eq. 2); 0 when either side is constant in the window.
  double PairWindowCorrelation(int64_t p, int64_t w) const;

  /// Sum over basic windows [lo, hi) of (1 - c_i): the Eq. 2 jump budget.
  /// Monotone non-negative in hi, enabling binary search.
  double OneMinusCorrRange(int64_t p, int64_t lo, int64_t hi) const {
    return pair_one_minus_corr_prefix_[Px(p, hi)] -
           pair_one_minus_corr_prefix_[Px(p, lo)];
  }

  /// Exact Pearson correlation of pair id `p` over basic windows [lo, hi),
  /// combined from the sketch in O(1) (moment form of Eq. 1). Returns 0 when
  /// either series is constant over the range.
  double PairRangeCorrelation(int64_t p, int64_t lo, int64_t hi) const;

  /// Same as PairRangeCorrelation but with the pair's series ids supplied by
  /// the caller, avoiding the O(N) id inversion — the per-cell hot path of
  /// the engines, which already track (i, j) while walking pair blocks.
  double PairRangeCorrelationIJ(int64_t p, int64_t i, int64_t j, int64_t lo,
                                int64_t hi) const;

  /// Exact Pearson correlation of (i, j) over basic windows [lo, hi) using
  /// per-series prefixes and a raw-data dot product: O(b * (hi - lo)) but
  /// requires no pair sketches (used by pivot scans and sketchless modes).
  double RangeCorrelationFromRaw(int64_t i, int64_t j, int64_t lo,
                                 int64_t hi) const;

  /// Bytes of sketch storage (diagnostics for the build benches).
  int64_t MemoryBytes() const;

  /// Bytes an index built over an `num_series x length` matrix with
  /// `options` will hold, without building it — the sketch cache's admission
  /// arithmetic. Matches MemoryBytes() of the built index exactly.
  static int64_t EstimateMemoryBytes(int64_t num_series, int64_t length,
                                     const BasicWindowIndexOptions& options);

 private:
  BasicWindowIndex() = default;

  /// Blocked build of the pair sketches (see
  /// BasicWindowIndexOptions::use_blocked_kernel); fills pair_dot_prefix_
  /// and pair_one_minus_corr_prefix_ from per-window z-normalized panels.
  void BuildPairSketchesBlocked(const NormalizedPanels& panels,
                                ThreadPool* pool);
  /// The seed's scalar per-pair reference build of the same sketches.
  void BuildPairSketchesScalar(const TimeSeriesMatrix& data, ThreadPool* pool);

  size_t Sx(int64_t s, int64_t w) const {
    return static_cast<size_t>(s * (num_basic_windows_ + 1) + w);
  }
  /// Pair rows are padded: kPairRowPad leading slack doubles put prefix
  /// slot w = 8k + 1 on a 64-byte boundary (with the 64-byte-aligned base
  /// and the 8-multiple row stride), so the build's batched 8-window runs
  /// land as full aligned cache lines eligible for non-temporal stores.
  static constexpr int64_t kPairRowPad = 7;
  size_t Px(int64_t p, int64_t w) const {
    return static_cast<size_t>(p * pair_row_stride_ + kPairRowPad + w);
  }

  const TimeSeriesMatrix* data_ = nullptr;
  int64_t basic_window_ = 0;
  int64_t num_basic_windows_ = 0;
  int64_t num_series_ = 0;
  int64_t num_pairs_ = 0;
  bool has_pair_sketches_ = false;

  // Prefix arrays, one row per series/pair. Series rows have nb + 1
  // entries; pair rows are padded to pair_row_stride_ (see kPairRowPad).
  // The pair arrays are allocated *uninitialized* (every slot is written
  // during the build): at scale they are the dominant allocation, and the
  // redundant zeroing pass costs a full sweep of memory bandwidth. The
  // storage members own the memory; the aligned pointers index it.
  std::vector<double> series_sum_prefix_;
  std::vector<double> series_sumsq_prefix_;
  std::unique_ptr<double[]> pair_dot_storage_;
  std::unique_ptr<double[]> pair_omc_storage_;
  double* pair_dot_prefix_ = nullptr;
  double* pair_one_minus_corr_prefix_ = nullptr;
  int64_t pair_row_stride_ = 0;
  size_t pair_prefix_size_ = 0;
  size_t pair_storage_size_ = 0;
};

/// Bytes currently parked in the process-wide sketch storage recycler (the
/// retired pair-prefix blocks destroyed indexes leave behind for the next
/// build). Observability hook for the serving layer's cache accounting and
/// for tests of the eviction → recycler → rebuild composition.
int64_t SketchRecyclerRetainedBytes();

/// Drops every block the recycler retains, returning the memory to the
/// allocator — e.g. after a serving layer mass-evicts sketches it does not
/// expect to rebuild.
void TrimSketchRecycler();

}  // namespace dangoron

#endif  // DANGORON_SKETCH_BASIC_WINDOW_INDEX_H_
