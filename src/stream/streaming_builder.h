#ifndef DANGORON_STREAM_STREAMING_BUILDER_H_
#define DANGORON_STREAM_STREAMING_BUILDER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "engine/query.h"
#include "engine/window_sink.h"
#include "serve/cache_sink.h"
#include "serve/window_result_cache.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

/// Options of the streaming network builder.
struct StreamingOptions {
  /// Basic window size b (columns). Arriving columns are buffered until a
  /// full basic window completes, then folded into the rolling sketch.
  int64_t basic_window = 24;
  /// Snapshot window l (columns); must be a positive multiple of b.
  int64_t window = 24 * 30;
  /// Sliding step eta (columns); must be a positive multiple of b.
  int64_t step = 24;
  /// Edge threshold beta.
  double threshold = 0.8;
  /// When true, |corr| >= beta makes an edge (see SlidingQuery::absolute).
  bool absolute = false;
};

/// One emitted network snapshot: the window's index (0-based, matching the
/// offline engines' window numbering) and its thresholded edges.
struct StreamSnapshot {
  int64_t window_index = 0;
  /// First column (absolute, counted from the first appended column) the
  /// window covers.
  int64_t start_column = 0;
  std::vector<Edge> edges;
};

/// Online counterpart of the offline engines: data arrives column by column
/// (one observation per series per tick) and a thresholded correlation
/// network is emitted every `step` columns once the first full window has
/// been seen — the "network construction and updates ... to achieve
/// interactivity" challenge of the paper's problem statement.
///
/// Mechanics: completed basic windows are folded into rolling per-series
/// (sum, sum-of-squares) and per-pair (inner product) accumulators over the
/// current window, adding the entering basic window and evicting the
/// departing one — O(N^2) work per emitted snapshot and
/// O(N^2 * ns) memory, independent of stream length. Results are bit-exact
/// against DangoronEngine in incremental mode on the same data (jumping
/// needs future statistics, which a stream does not have).
///
/// Not thread-safe; feed it from one thread.
class StreamingNetworkBuilder {
 public:
  /// Validates options; `num_series` is fixed for the builder's lifetime.
  static Result<StreamingNetworkBuilder> Create(
      int64_t num_series, const StreamingOptions& options);

  /// Appends one column: `column[s]` is series s's observation at the next
  /// tick. Missing values (NaN) are rejected — interpolate upstream.
  Status Append(std::span<const double> column);

  /// Convenience: appends a whole matrix column range column-by-column.
  Status AppendColumns(const TimeSeriesMatrix& matrix, int64_t start,
                       int64_t count);

  /// Number of snapshots ready to be popped (always 0 while a sink is
  /// attached — the sink is the consumer; see EmitTo).
  int64_t ReadySnapshots() const {
    return static_cast<int64_t>(ready_.size());
  }

  /// Pops the oldest ready snapshot; FailedPrecondition when none is ready.
  Result<StreamSnapshot> PopSnapshot();

  /// Total columns appended so far.
  int64_t columns_seen() const { return columns_seen_; }

  /// Routes every window emitted from now on into `sink` — the same
  /// `WindowSink` pipeline the offline engines drive — instead of the
  /// internal ready queue, so live consumption never double-buffers edges.
  /// The stream is open-ended: the builder drives `OnWindow` only (window
  /// indices ascend with the builder's numbering; no OnBegin/OnFinish). A
  /// false return from OnWindow detaches the sink; later snapshots queue
  /// internally again, and the window the sink cancelled on belongs to the
  /// sink (zero-copy emission — it is not requeued; see
  /// sink_cancelled_window()). The sink must outlive the builder or be
  /// detached (pass nullptr) first.
  void EmitTo(WindowSink* sink);

  /// Index of the window a sink consumed while cancelling (-1 if none):
  /// the one emission that is in neither the sink's output nor the ready
  /// queue, so fallback consumers can account for it.
  int64_t sink_cancelled_window() const { return sink_cancelled_window_; }

  /// Publishes every snapshot emitted from now on into `cache` as dataset
  /// `dataset_fingerprint`, keyed at this builder's geometry and threshold —
  /// so a serving layer's historical queries reuse windows the live stream
  /// already evaluated (the stream must be fed the dataset from column 0 for
  /// the window numbering to line up). Implemented as EmitTo with an owned
  /// CacheWindowSink: published snapshots go to the cache *instead of* the
  /// ready queue (no double-buffering — pre-pipeline behavior kept both
  /// copies). To interoperate with a server running threshold-family keys,
  /// pick a stream threshold on the server's grid (see
  /// DangoronServer::CanonicalThreshold). Values agree with the server's
  /// sketch-evaluated windows up to floating-point roundoff; at an exact
  /// threshold tie the two paths could round an edge differently, the usual
  /// caveat of mixing algebraically equal evaluations. The cache must
  /// outlive the builder; pass nullptr to detach.
  void PublishTo(WindowResultCache* cache, uint64_t dataset_fingerprint);

  /// Family-threshold publishing: like PublishTo above, but emitted windows
  /// are *evaluated and keyed* at `publish_threshold` instead of the
  /// builder's own threshold — pass the server's grid value
  /// (`DangoronServer::CanonicalThreshold(options.threshold,
  /// options.absolute)`) and the live stream warms the server's
  /// threshold-family caches even when the alert threshold is off-grid.
  /// The cache-key soundness rule holds by construction: the set keyed at
  /// `publish_threshold` contains exactly the edges clearing it (the
  /// builder evaluates at that value); with publish_threshold <= the alert
  /// threshold each published window is a superset of the alert edges, the
  /// same superset-then-filter contract the server's family cache uses.
  /// Detaching (nullptr cache, EmitTo, or a cancelling sink) restores
  /// emission at the builder's own threshold. Fails on a threshold outside
  /// [-1, 1] (or outside [0, 1] in absolute mode) without touching the
  /// current sink.
  Status PublishTo(WindowResultCache* cache, uint64_t dataset_fingerprint,
                   double publish_threshold);

 private:
  StreamingNetworkBuilder() = default;

  // Folds the completed basic window in pending_ into the rolling state and
  // emits a snapshot when a window boundary is crossed.
  void FoldBasicWindow();

  // The shared attach/detach body of both PublishTo forms (threshold
  // already validated).
  void AttachPublishSink(WindowResultCache* cache,
                         uint64_t dataset_fingerprint,
                         double publish_threshold);

  int64_t num_series_ = 0;
  int64_t num_pairs_ = 0;
  StreamingOptions options_;
  int64_t ns_ = 0;  // basic windows per snapshot window
  int64_t m_ = 0;   // basic windows per step

  // Buffer of the currently filling basic window: column-major ticks,
  // pending_[t * num_series + s].
  std::vector<double> pending_;
  int64_t pending_ticks_ = 0;

  // Ring of the last ns_ basic windows' statistics. Element layout:
  // series_sum/sumsq: [bw][series]; pair_dot: [bw][pair].
  std::deque<std::vector<double>> ring_series_sum_;
  std::deque<std::vector<double>> ring_series_sumsq_;
  std::deque<std::vector<double>> ring_pair_dot_;

  // Rolling totals over the basic windows currently in the ring.
  std::vector<double> window_series_sum_;
  std::vector<double> window_series_sumsq_;
  std::vector<double> window_pair_dot_;

  int64_t basic_windows_seen_ = 0;
  int64_t next_window_index_ = 0;
  int64_t columns_seen_ = 0;

  // Threshold snapshots are currently evaluated at: the builder's own
  // threshold, except while a family-threshold publish sink is attached
  // (see the three-argument PublishTo), when it is the publish threshold.
  double emit_threshold_ = 0.0;

  // Attached emission sink (see EmitTo); not owned. When PublishTo wired a
  // cache, publish_sink_ owns the adapter and sink_ points at it.
  WindowSink* sink_ = nullptr;
  std::unique_ptr<CacheWindowSink> publish_sink_;
  int64_t sink_cancelled_window_ = -1;

  std::deque<StreamSnapshot> ready_;
};

}  // namespace dangoron

#endif  // DANGORON_STREAM_STREAMING_BUILDER_H_
