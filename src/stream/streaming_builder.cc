#include "stream/streaming_builder.h"

#include <cmath>

#include "corr/pearson.h"
#include "sketch/basic_window_index.h"

namespace dangoron {

Result<StreamingNetworkBuilder> StreamingNetworkBuilder::Create(
    int64_t num_series, const StreamingOptions& options) {
  if (num_series < 2) {
    return Status::InvalidArgument(
        "StreamingNetworkBuilder: need at least 2 series, got ", num_series);
  }
  if (options.basic_window <= 0) {
    return Status::InvalidArgument(
        "StreamingNetworkBuilder: basic_window must be positive");
  }
  if (options.window <= 0 || options.window % options.basic_window != 0) {
    return Status::InvalidArgument(
        "StreamingNetworkBuilder: window must be a positive multiple of the "
        "basic window (window=",
        options.window, ", b=", options.basic_window, ")");
  }
  if (options.step <= 0 || options.step % options.basic_window != 0) {
    return Status::InvalidArgument(
        "StreamingNetworkBuilder: step must be a positive multiple of the "
        "basic window (step=",
        options.step, ", b=", options.basic_window, ")");
  }
  if (options.threshold < -1.0 || options.threshold > 1.0) {
    return Status::InvalidArgument(
        "StreamingNetworkBuilder: threshold must be in [-1, 1]");
  }

  StreamingNetworkBuilder builder;
  builder.num_series_ = num_series;
  builder.num_pairs_ = num_series * (num_series - 1) / 2;
  builder.options_ = options;
  builder.ns_ = options.window / options.basic_window;
  builder.m_ = options.step / options.basic_window;
  builder.pending_.assign(
      static_cast<size_t>(options.basic_window * num_series), 0.0);
  builder.window_series_sum_.assign(static_cast<size_t>(num_series), 0.0);
  builder.window_series_sumsq_.assign(static_cast<size_t>(num_series), 0.0);
  builder.window_pair_dot_.assign(static_cast<size_t>(builder.num_pairs_),
                                  0.0);
  builder.emit_threshold_ = options.threshold;
  return builder;
}

Status StreamingNetworkBuilder::Append(std::span<const double> column) {
  if (static_cast<int64_t>(column.size()) != num_series_) {
    return Status::InvalidArgument("Append: column has ", column.size(),
                                   " values, expected ", num_series_);
  }
  for (const double v : column) {
    if (IsMissing(v)) {
      return Status::FailedPrecondition(
          "Append: missing value in stream; interpolate upstream");
    }
  }
  double* tick =
      &pending_[static_cast<size_t>(pending_ticks_ * num_series_)];
  for (int64_t s = 0; s < num_series_; ++s) {
    tick[s] = column[static_cast<size_t>(s)];
  }
  ++pending_ticks_;
  ++columns_seen_;
  if (pending_ticks_ == options_.basic_window) {
    FoldBasicWindow();
    pending_ticks_ = 0;
  }
  return Status::Ok();
}

Status StreamingNetworkBuilder::AppendColumns(const TimeSeriesMatrix& matrix,
                                              int64_t start, int64_t count) {
  if (matrix.num_series() != num_series_) {
    return Status::InvalidArgument("AppendColumns: matrix has ",
                                   matrix.num_series(), " series, expected ",
                                   num_series_);
  }
  if (start < 0 || count < 0 || start + count > matrix.length()) {
    return Status::OutOfRange("AppendColumns: [", start, ", ", start + count,
                              ") out of [0, ", matrix.length(), ")");
  }
  std::vector<double> column(static_cast<size_t>(num_series_));
  for (int64_t t = start; t < start + count; ++t) {
    for (int64_t s = 0; s < num_series_; ++s) {
      column[static_cast<size_t>(s)] = matrix.Get(s, t);
    }
    RETURN_IF_ERROR(Append(column));
  }
  return Status::Ok();
}

void StreamingNetworkBuilder::FoldBasicWindow() {
  const int64_t b = options_.basic_window;
  // Per-series statistics of the completed basic window.
  std::vector<double> series_sum(static_cast<size_t>(num_series_), 0.0);
  std::vector<double> series_sumsq(static_cast<size_t>(num_series_), 0.0);
  for (int64_t t = 0; t < b; ++t) {
    const double* tick = &pending_[static_cast<size_t>(t * num_series_)];
    for (int64_t s = 0; s < num_series_; ++s) {
      series_sum[static_cast<size_t>(s)] += tick[s];
      series_sumsq[static_cast<size_t>(s)] += tick[s] * tick[s];
    }
  }
  // Per-pair inner products. The tick-major pending buffer keeps both
  // series' values adjacent per tick.
  std::vector<double> pair_dot(static_cast<size_t>(num_pairs_), 0.0);
  for (int64_t t = 0; t < b; ++t) {
    const double* tick = &pending_[static_cast<size_t>(t * num_series_)];
    int64_t p = 0;
    for (int64_t i = 0; i < num_series_; ++i) {
      const double vi = tick[i];
      for (int64_t j = i + 1; j < num_series_; ++j, ++p) {
        pair_dot[static_cast<size_t>(p)] += vi * tick[j];
      }
    }
  }

  // Fold into the rolling window, evicting the departing basic window.
  for (int64_t s = 0; s < num_series_; ++s) {
    window_series_sum_[static_cast<size_t>(s)] +=
        series_sum[static_cast<size_t>(s)];
    window_series_sumsq_[static_cast<size_t>(s)] +=
        series_sumsq[static_cast<size_t>(s)];
  }
  for (int64_t p = 0; p < num_pairs_; ++p) {
    window_pair_dot_[static_cast<size_t>(p)] +=
        pair_dot[static_cast<size_t>(p)];
  }
  ring_series_sum_.push_back(std::move(series_sum));
  ring_series_sumsq_.push_back(std::move(series_sumsq));
  ring_pair_dot_.push_back(std::move(pair_dot));
  if (static_cast<int64_t>(ring_series_sum_.size()) > ns_) {
    const std::vector<double>& old_sum = ring_series_sum_.front();
    const std::vector<double>& old_sumsq = ring_series_sumsq_.front();
    const std::vector<double>& old_dot = ring_pair_dot_.front();
    for (int64_t s = 0; s < num_series_; ++s) {
      window_series_sum_[static_cast<size_t>(s)] -=
          old_sum[static_cast<size_t>(s)];
      window_series_sumsq_[static_cast<size_t>(s)] -=
          old_sumsq[static_cast<size_t>(s)];
    }
    for (int64_t p = 0; p < num_pairs_; ++p) {
      window_pair_dot_[static_cast<size_t>(p)] -=
          old_dot[static_cast<size_t>(p)];
    }
    ring_series_sum_.pop_front();
    ring_series_sumsq_.pop_front();
    ring_pair_dot_.pop_front();
  }
  ++basic_windows_seen_;

  // Emit when a step boundary aligns with a full window.
  if (basic_windows_seen_ >= ns_ &&
      (basic_windows_seen_ - ns_) % m_ == 0) {
    StreamSnapshot snapshot;
    snapshot.window_index = (basic_windows_seen_ - ns_) / m_;
    snapshot.start_column = (basic_windows_seen_ - ns_) * b;
    const double count = static_cast<double>(options_.window);
    int64_t p = 0;
    for (int64_t i = 0; i < num_series_; ++i) {
      for (int64_t j = i + 1; j < num_series_; ++j, ++p) {
        const double c = PearsonFromMoments(
            count, window_series_sum_[static_cast<size_t>(i)],
            window_series_sum_[static_cast<size_t>(j)],
            window_series_sumsq_[static_cast<size_t>(i)],
            window_series_sumsq_[static_cast<size_t>(j)],
            window_pair_dot_[static_cast<size_t>(p)]);
        const bool is_edge =
            options_.absolute
                ? (c <= -emit_threshold_ || c >= emit_threshold_)
                : c >= emit_threshold_;
        if (is_edge) {
          snapshot.edges.push_back(
              Edge{static_cast<int32_t>(i), static_cast<int32_t>(j), c});
        }
      }
    }
    if (sink_ != nullptr) {
      // The emitted edge walk is (i, j) ascending — already the canonical
      // sink order — and the edges move straight into the sink: one buffer,
      // shared onward (e.g. into a server's window cache) without a copy.
      // A false return detaches the sink; the window it cancelled on was
      // consumed by the sink (same ownership rule as the engines') and is
      // counted in sink_cancelled_window(), not requeued — zero-copy
      // emission means the builder no longer holds those edges.
      if (!sink_->OnWindow(snapshot.window_index,
                           std::move(snapshot.edges))) {
        sink_cancelled_window_ = snapshot.window_index;
        sink_ = nullptr;  // later snapshots queue internally again
        publish_sink_.reset();
        emit_threshold_ = options_.threshold;  // family publishing ends too
      }
    } else {
      ready_.push_back(std::move(snapshot));
    }
  }
}

void StreamingNetworkBuilder::EmitTo(WindowSink* sink) {
  sink_ = sink;
  publish_sink_.reset();
  emit_threshold_ = options_.threshold;
  sink_cancelled_window_ = -1;  // a fresh sink session has lost nothing
}

void StreamingNetworkBuilder::PublishTo(WindowResultCache* cache,
                                        uint64_t dataset_fingerprint) {
  // The builder's own threshold was validated by Create; no re-check.
  AttachPublishSink(cache, dataset_fingerprint, options_.threshold);
}

Status StreamingNetworkBuilder::PublishTo(WindowResultCache* cache,
                                          uint64_t dataset_fingerprint,
                                          double publish_threshold) {
  if (publish_threshold < -1.0 || publish_threshold > 1.0 ||
      (options_.absolute && publish_threshold < 0.0)) {
    return Status::InvalidArgument(
        "PublishTo: publish threshold ", publish_threshold,
        " outside the valid range ",
        options_.absolute ? "[0, 1] of absolute mode" : "[-1, 1]");
  }
  AttachPublishSink(cache, dataset_fingerprint, publish_threshold);
  return Status::Ok();
}

void StreamingNetworkBuilder::AttachPublishSink(WindowResultCache* cache,
                                                uint64_t dataset_fingerprint,
                                                double publish_threshold) {
  sink_cancelled_window_ = -1;  // a fresh sink session has lost nothing
  if (cache == nullptr) {
    sink_ = nullptr;
    publish_sink_.reset();
    emit_threshold_ = options_.threshold;
    return;
  }
  CacheWindowSink::FixedGeometry geometry;
  geometry.window_bws = ns_;
  geometry.step_bws = m_;
  geometry.start0_bw = 0;  // the stream is fed from column 0 by contract
  geometry.threshold = publish_threshold;
  geometry.absolute = options_.absolute;
  publish_sink_ = std::make_unique<CacheWindowSink>(
      cache, dataset_fingerprint, options_.basic_window, geometry);
  sink_ = publish_sink_.get();
  // Evaluate emitted windows at the publish threshold so the key's promise
  // — "exactly the edges clearing it" — holds (cache-key soundness).
  emit_threshold_ = publish_threshold;
}

Result<StreamSnapshot> StreamingNetworkBuilder::PopSnapshot() {
  if (ready_.empty()) {
    return Status::FailedPrecondition(
        "PopSnapshot: no snapshot ready (", columns_seen_,
        " columns seen; the first snapshot needs ", options_.window, ")");
  }
  StreamSnapshot snapshot = std::move(ready_.front());
  ready_.pop_front();
  return snapshot;
}

}  // namespace dangoron
