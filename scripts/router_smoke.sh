#!/usr/bin/env bash
# Multi-process smoke test of the sharded serving path: a router process
# fronting forked serverd shards, queried by the stock CLI client.
#
# Scenario 1 — clean fan-out:
#   tomborg_generate -> data.csv
#   dangoron_serverd route data.csv spawn=2   (forks 2 `serve` children)
#   dangoron_serverd query <router>  -> routed.csv
#   dangoron_serverd query <shard 0> -> direct.csv   (full dataset = truth)
#   cmp routed.csv direct.csv
#
# Scenario 2 — shard death:
#   dangoron_serverd route data.csv spawn=3
#   SIGKILL one shard child while a routed query is in flight
#   the query must still exit 0 with output byte-identical to direct.csv
#   (mid-stream failover / plan-time re-plan, whichever the race yields),
#   and after the supervisor respawns the child a follow-up query matches
#   too.
#
# The byte-compare is the acceptance property from the router work: a
# sharded query answers byte-identically to an unsharded one — shard
# failures included. Usage:
#
#   scripts/router_smoke.sh [build-dir]   # default: build

set -euo pipefail

BUILD="${1:-build}"
WORK="$(mktemp -d)"
ROUTER_PID=""

cleanup() {
  if [[ -n "$ROUTER_PID" ]]; then
    kill "$ROUTER_PID" 2>/dev/null || true
    wait "$ROUTER_PID" 2>/dev/null || true  # reaps its shard children too
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# Randomized ports so a stale listener from a previous run cannot collide.
ROUTER_PORT=$((20000 + RANDOM % 2000))
BASE_PORT=$((ROUTER_PORT + 1))

"$BUILD/tomborg_generate" 48 2048 block pink 1 "$WORK/data.csv" >/dev/null

"$BUILD/dangoron_serverd" route "$WORK/data.csv" spawn=2 \
  port="$ROUTER_PORT" base-port="$BASE_PORT" &
ROUTER_PID=$!

# The router prints its banner only once both shards answered their
# readiness probes; poll with real queries until it serves (window and step
# must be multiples of the shards' basic window, 24 by default).
QUERY=(query 127.0.0.1 "$ROUTER_PORT" data 288 96 0.3 abs)
up=""
for _ in $(seq 1 60); do
  if ! kill -0 "$ROUTER_PID" 2>/dev/null; then
    echo "router_smoke: router process died during startup" >&2
    exit 1
  fi
  if "$BUILD/dangoron_serverd" "${QUERY[@]}" "$WORK/routed.csv" \
      >/dev/null 2>&1; then
    up=1
    break
  fi
  sleep 0.25
done
if [[ -z "$up" ]]; then
  echo "router_smoke: router never answered a query" >&2
  exit 1
fi

# Every shard holds the full dataset, so shard 0 queried directly (no pair
# restriction) is the unsharded ground truth.
"$BUILD/dangoron_serverd" query 127.0.0.1 "$BASE_PORT" data 288 96 0.3 abs \
  "$WORK/direct.csv" >/dev/null

if ! cmp -s "$WORK/routed.csv" "$WORK/direct.csv"; then
  echo "router_smoke: sharded output differs from the unsharded query" >&2
  exit 1
fi
if [[ ! -s "$WORK/routed.csv" ]]; then
  echo "router_smoke: query produced no output" >&2
  exit 1
fi

echo "router_smoke: OK — 2-shard routed query byte-identical to direct query"

# ---------------------------------------------------------- shard death --
# Fresh 3-shard router on its own ports; the 2-shard one dies first so the
# cleanup trap only ever owns one router.
kill "$ROUTER_PID" 2>/dev/null || true
wait "$ROUTER_PID" 2>/dev/null || true
ROUTER_PID=""

ROUTER_PORT=$((24000 + RANDOM % 2000))
BASE_PORT=$((ROUTER_PORT + 1))
"$BUILD/dangoron_serverd" route "$WORK/data.csv" spawn=3 \
  port="$ROUTER_PORT" base-port="$BASE_PORT" &
ROUTER_PID=$!

QUERY=(query 127.0.0.1 "$ROUTER_PORT" data 288 96 0.3 abs)
up=""
for _ in $(seq 1 60); do
  if ! kill -0 "$ROUTER_PID" 2>/dev/null; then
    echo "router_smoke: 3-shard router died during startup" >&2
    exit 1
  fi
  if "$BUILD/dangoron_serverd" "${QUERY[@]}" "$WORK/warm.csv" \
      >/dev/null 2>&1; then
    up=1
    break
  fi
  sleep 0.25
done
if [[ -z "$up" ]]; then
  echo "router_smoke: 3-shard router never answered a query" >&2
  exit 1
fi

VICTIM="$(pgrep -P "$ROUTER_PID" | head -n 1 || true)"
if [[ -z "$VICTIM" ]]; then
  echo "router_smoke: could not find a shard child to kill" >&2
  exit 1
fi

# SIGKILL the shard while a routed query is in flight. Whether the kill
# lands mid-stream (failover re-dispatches the dead range) or between
# queries (planning re-plans around the refused connect), the query must
# succeed with unchanged bytes.
"$BUILD/dangoron_serverd" "${QUERY[@]}" "$WORK/killed.csv" \
  >/dev/null 2>&1 &
QUERY_PID=$!
sleep 0.05
kill -9 "$VICTIM" 2>/dev/null || true
if ! wait "$QUERY_PID"; then
  echo "router_smoke: routed query failed after a shard was SIGKILLed" >&2
  exit 1
fi
if ! cmp -s "$WORK/killed.csv" "$WORK/direct.csv"; then
  echo "router_smoke: post-kill output differs from the unsharded query" >&2
  exit 1
fi

# The supervisor reaps the corpse, respawns the shard, and re-probes it;
# follow-up queries keep answering (over survivors until the respawn lands,
# over all three after).
ok=""
for _ in $(seq 1 40); do
  if "$BUILD/dangoron_serverd" "${QUERY[@]}" "$WORK/respawned.csv" \
      >/dev/null 2>&1; then
    ok=1
    break
  fi
  sleep 0.25
done
if [[ -z "$ok" ]]; then
  echo "router_smoke: router stopped answering after the shard kill" >&2
  exit 1
fi
if ! cmp -s "$WORK/respawned.csv" "$WORK/direct.csv"; then
  echo "router_smoke: post-respawn output differs from the unsharded query" >&2
  exit 1
fi

echo "router_smoke: OK — 3-shard query survives a SIGKILLed shard byte-identically"
