#!/usr/bin/env python3
"""Fixture tests for check_invariants.py — the linter that guards the
linters needs its own proof it still fires.

Builds a minimal conforming repo tree in a tempdir, asserts it passes,
then breaks one invariant per case and asserts the check fails with a
message pointing at the actual drift:
  - a failpoint site missing its src/common/README.md catalog row (and
    the reverse: a stale catalog row naming no site),
  - a status-code table in docs/WIRE_PROTOCOL.md drifted from the enum,
  - an exit-code table drifted from kExitCodeSpecs,
  - a subsystem directory with no README,
  - a stray raw std::mutex outside src/common/sync.h.

Exit 0 when every case behaves, 1 otherwise.
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_invariants  # noqa: E402


CLEAN_STATUS_H = """
enum class StatusCode : int8_t {
  kOk = 0,
  kInternal = 1,
};
"""

CLEAN_WIRE_DOC = """
### 5.3 Status (type 3)

```
varint  code            0 Ok, 1 Internal
varint  message length
```
"""

CLEAN_FLAGS_H = """
inline constexpr ExitCodeSpec kExitCodeSpecs[] = {
    {0, "success"},
    {1, "generic failure"},
};
"""

CLEAN_ARCH_DOC = """
## CLI exit codes

| Code | Meaning |
| --- | --- |
| `0` | success |
| `1` | generic failure |
"""

CLEAN_COMMON_README = """
# common/

| Site | Where | Macro | What it exercises |
| --- | --- | --- | --- |
| `serve.prepare` | src/serve/server.cc | `DANGORON_FAILPOINT` | prepare failure |
"""

CLEAN_SERVER_CC = """
#include "common/sync.h"
void Prepare() {
  DANGORON_FAILPOINT("serve.prepare");
}
"""


def write(root, rel, content):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


def make_clean_tree(root):
    write(root, "src/common/README.md", CLEAN_COMMON_README)
    write(root, "src/common/status.h", CLEAN_STATUS_H)
    write(root, "src/common/sync.h", "class Mutex { std::mutex mu_; };\n")
    write(root, "src/serve/README.md", "# serve/\n")
    write(root, "src/serve/server.cc", CLEAN_SERVER_CC)
    write(root, "docs/WIRE_PROTOCOL.md", CLEAN_WIRE_DOC)
    write(root, "docs/ARCHITECTURE.md", CLEAN_ARCH_DOC)
    write(root, "examples/serve_flags.h", CLEAN_FLAGS_H)


def expect(case, errors, *substrings):
    """Every substring must appear in some error line; no substring set
    means the case must produce zero errors."""
    if not substrings:
        if errors:
            print(f"FAIL [{case}]: expected a clean pass, got:")
            for error in errors:
                print(f"    {error}")
            return False
        print(f"ok   [{case}]: clean tree passes")
        return True
    for substring in substrings:
        if not any(substring in error for error in errors):
            print(f"FAIL [{case}]: no error mentions '{substring}'; got:")
            for error in errors or ["(no errors at all)"]:
                print(f"    {error}")
            return False
    print(f"ok   [{case}]: fails and names the drift")
    return True


def run_case(case, mutate, *substrings):
    with tempfile.TemporaryDirectory() as root:
        make_clean_tree(root)
        mutate(root)
        return expect(case, check_invariants.run_checks(root), *substrings)


def main():
    results = [
        run_case("clean-tree", lambda root: None),
        run_case(
            "uncataloged-failpoint",
            lambda root: write(
                root, "src/serve/server.cc",
                CLEAN_SERVER_CC + 'void F() { DANGORON_FAILPOINT_STATUS'
                                  '("serve.rogue_site"); }\n'),
            "failpoint-catalog", "serve.rogue_site",
            "src/serve/server.cc"),
        run_case(
            "stale-catalog-row",
            lambda root: write(
                root, "src/common/README.md",
                CLEAN_COMMON_README +
                "| `serve.retired_site` | gone | `X` | nothing |\n"),
            "failpoint-catalog", "serve.retired_site", "stale"),
        run_case(
            "drifted-status-table",
            lambda root: write(
                root, "docs/WIRE_PROTOCOL.md",
                CLEAN_WIRE_DOC.replace("1 Internal", "1 IoError")),
            "wire-status", "kInternal", "IoError"),
        run_case(
            "drifted-exit-table",
            lambda root: write(
                root, "docs/ARCHITECTURE.md",
                CLEAN_ARCH_DOC.replace("| `1` | generic failure |",
                                       "| `1` | something else |")),
            "exit-codes", "generic failure", "something else"),
        run_case(
            "missing-subsystem-readme",
            lambda root: write(root, "src/router/router.cc", "\n"),
            "subsystem-readmes", "src/router/"),
        run_case(
            "stray-raw-mutex",
            lambda root: write(
                root, "src/serve/rogue.h",
                "#include <mutex>\nstd::mutex raw_;  // not the wrapper\n"),
            "raw-mutex", "src/serve/rogue.h:2", "std::mutex"),
        run_case(
            "commented-mutex-is-fine",
            lambda root: write(
                root, "src/serve/prose.h",
                "// wraps std::mutex so the analysis sees it\nint x;\n")),
    ]
    failed = results.count(False)
    if failed:
        print(f"invariant selftest FAILED ({failed}/{len(results)} cases)")
        return 1
    print(f"invariant selftest passed ({len(results)} cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
