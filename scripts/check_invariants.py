#!/usr/bin/env python3
"""Cross-checks the repository's prose-encoded contracts against the code.

The serving stack documents several invariants in Markdown that nothing
compiles: the failpoint site catalog, the wire status-code table, the CLI
exit-code table, the one-README-per-subsystem rule. This linter re-derives
each side from its source of truth and fails on drift, so a PR that adds a
failpoint (or renames a status code) cannot land without its paperwork.

Checks:
  1. failpoint-catalog: every `DANGORON_FAILPOINT*("site")` in src/ and
     examples/ has a row in the src/common/README.md catalog, and every
     catalog row names a live site (tests/ arm sites, they don't define
     them, so they are excluded).
  2. wire-status: the StatusCode enum in src/common/status.h — the codes
     the wire protocol's Status frame carries (src/wire/wire_format.h) —
     matches the code list in docs/WIRE_PROTOCOL.md §5.3, value for value.
  3. exit-codes: the kExitCodeSpecs table in examples/serve_flags.h
     matches the CLI exit-code table in docs/ARCHITECTURE.md, code for
     code and meaning for meaning.
  4. subsystem-readmes: every src/*/ directory has a README.md.
  5. raw-mutex: no `std::mutex` / `std::condition_variable` / guard types
     outside src/common/sync.h — everything goes through the annotated
     wrappers so Clang's thread-safety analysis sees every lock.

Exit 0 when every invariant holds, 1 otherwise (one pointed line each).

Usage:
  check_invariants.py [repo_root]
"""

import os
import re
import sys

FAILPOINT_SITE_RE = re.compile(r'\bDANGORON_FAILPOINT\w*\(\s*"([^"]+)"')
# Catalog rows are `| `site.name` | ... |`; site names are dotted lowercase,
# which keeps the action-spec table (`error[:code]`, `wake`, ...) out.
CATALOG_ROW_RE = re.compile(r"^\|\s*`([a-z_]+(?:\.[a-z_]+)+)`\s*\|",
                            re.MULTILINE)
STATUS_ENUM_RE = re.compile(r"\bk([A-Za-z]+)\s*=\s*(\d+)\s*,")
# §5.3 lists codes as `N Name` pairs inside the frame-layout code block.
DOC_STATUS_PAIR_RE = re.compile(r"\b(\d+)\s+([A-Z][A-Za-z]+)\b")
EXIT_SPEC_RE = re.compile(r'\{\s*(\d+)\s*,\s*"([^"]*)"\s*\}')
EXIT_DOC_ROW_RE = re.compile(r"^\|\s*`(\d+)`\s*\|\s*([^|]+?)\s*\|",
                             re.MULTILINE)
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")

MUTEX_SCAN_DIRS = ("src", "tests", "bench", "examples")
MUTEX_ALLOWED = os.path.join("src", "common", "sync.h")


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def strip_comments(text):
    """Removes // and /* */ comments so prose mentions of std::mutex
    (e.g. in sync.h's own documentation) don't trip the scan."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def source_files(root, subdirs, exts=(".cc", ".h")):
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def check_failpoint_catalog(root, errors):
    """Code sites and README catalog rows must match both ways."""
    sites = {}  # name -> first defining file
    for path in source_files(root, ("src", "examples")):
        if path.endswith(os.path.join("common", "failpoint.h")):
            continue  # the macro definitions, not sites
        for name in FAILPOINT_SITE_RE.findall(strip_comments(read(path))):
            sites.setdefault(name, os.path.relpath(path, root))
    readme = os.path.join(root, "src", "common", "README.md")
    catalog = set(CATALOG_ROW_RE.findall(read(readme)))
    for name in sorted(set(sites) - catalog):
        errors.append(
            f"failpoint-catalog: site '{name}' ({sites[name]}) has no row "
            f"in src/common/README.md — document what the site exercises")
    for name in sorted(catalog - set(sites)):
        errors.append(
            f"failpoint-catalog: src/common/README.md row '{name}' names "
            f"no live DANGORON_FAILPOINT site — stale row?")


def check_wire_status_codes(root, errors):
    """StatusCode enum vs the docs/WIRE_PROTOCOL.md §5.3 code list."""
    enum_text = read(os.path.join(root, "src", "common", "status.h"))
    enum_match = re.search(r"enum class StatusCode[^{]*\{(.*?)\}", enum_text,
                           re.DOTALL)
    if enum_match is None:
        errors.append("wire-status: no StatusCode enum in "
                      "src/common/status.h")
        return
    enum_codes = {int(value): name
                  for name, value in
                  STATUS_ENUM_RE.findall(strip_comments(enum_match.group(1)))}
    doc_text = read(os.path.join(root, "docs", "WIRE_PROTOCOL.md"))
    section = re.search(r"### 5\.3 .*?varint\s+code(.*?)varint\s+message",
                        doc_text, re.DOTALL)
    if section is None:
        errors.append("wire-status: docs/WIRE_PROTOCOL.md §5.3 has no "
                      "'varint code ... varint message' block to check")
        return
    doc_codes = {int(value): name
                 for value, name in
                 DOC_STATUS_PAIR_RE.findall(section.group(1))}
    for value in sorted(set(enum_codes) - set(doc_codes)):
        errors.append(
            f"wire-status: StatusCode::k{enum_codes[value]} = {value} is "
            f"missing from the docs/WIRE_PROTOCOL.md §5.3 code list")
    for value in sorted(set(doc_codes) - set(enum_codes)):
        errors.append(
            f"wire-status: docs/WIRE_PROTOCOL.md §5.3 lists code {value} "
            f"({doc_codes[value]}) which StatusCode does not define")
    for value in sorted(set(enum_codes) & set(doc_codes)):
        if enum_codes[value] != doc_codes[value]:
            errors.append(
                f"wire-status: code {value} is k{enum_codes[value]} in the "
                f"enum but {doc_codes[value]} in docs/WIRE_PROTOCOL.md §5.3")


def check_exit_codes(root, errors):
    """kExitCodeSpecs vs the CLI exit-code table in docs/ARCHITECTURE.md."""
    flags_text = strip_comments(
        read(os.path.join(root, "examples", "serve_flags.h")))
    spec_match = re.search(r"kExitCodeSpecs\[\]\s*=\s*\{(.*?)\};",
                           flags_text, re.DOTALL)
    if spec_match is None:
        errors.append("exit-codes: no kExitCodeSpecs table in "
                      "examples/serve_flags.h")
        return
    specs = {int(code): meaning
             for code, meaning in EXIT_SPEC_RE.findall(spec_match.group(1))}
    doc_text = read(os.path.join(root, "docs", "ARCHITECTURE.md"))
    doc_rows = {int(code): meaning
                for code, meaning in EXIT_DOC_ROW_RE.findall(doc_text)}
    for code in sorted(set(specs) - set(doc_rows)):
        errors.append(
            f"exit-codes: exit code {code} ('{specs[code]}') has no row in "
            f"the docs/ARCHITECTURE.md exit-code table")
    for code in sorted(set(doc_rows) - set(specs)):
        errors.append(
            f"exit-codes: docs/ARCHITECTURE.md documents exit code {code} "
            f"which examples/serve_flags.h does not define")
    for code in sorted(set(specs) & set(doc_rows)):
        if specs[code] != doc_rows[code]:
            errors.append(
                f"exit-codes: exit code {code} means '{specs[code]}' in "
                f"serve_flags.h but '{doc_rows[code]}' in the docs table")


def check_subsystem_readmes(root, errors):
    src = os.path.join(root, "src")
    for name in sorted(os.listdir(src)):
        subdir = os.path.join(src, name)
        if os.path.isdir(subdir) and \
                not os.path.exists(os.path.join(subdir, "README.md")):
            errors.append(
                f"subsystem-readmes: src/{name}/ has no README.md — every "
                f"subsystem documents its role and contracts")


def check_raw_mutex(root, errors):
    """The annotated wrappers in src/common/sync.h are the only place raw
    standard-library mutex primitives may appear; anywhere else they are
    invisible to thread-safety analysis."""
    for path in source_files(root, MUTEX_SCAN_DIRS):
        rel = os.path.relpath(path, root)
        if rel == MUTEX_ALLOWED:
            continue
        for i, line in enumerate(strip_comments(read(path)).splitlines(), 1):
            match = RAW_MUTEX_RE.search(line)
            if match:
                errors.append(
                    f"raw-mutex: {rel}:{i} uses {match.group(0)} — use the "
                    f"annotated wrappers from src/common/sync.h instead")


CHECKS = (
    check_failpoint_catalog,
    check_wire_status_codes,
    check_exit_codes,
    check_subsystem_readmes,
    check_raw_mutex,
)


def run_checks(root):
    errors = []
    for check in CHECKS:
        check(root, errors)
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = run_checks(root)
    if errors:
        print(f"invariant check FAILED ({len(errors)} violations):",
              file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    print(f"invariant check passed: {len(CHECKS)} project invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
