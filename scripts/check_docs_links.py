#!/usr/bin/env python3
"""Checks every relative link in the repository's Markdown docs.

Walks all tracked *.md files (skipping build trees), extracts inline
Markdown links and image references, and verifies that every relative
target exists on disk — including `#fragment` anchors against the target
file's headings. External links (http/https/mailto) are not fetched; a
docs build must not depend on the network.

Exit 0 when every link resolves, 1 otherwise (one line per broken link).

Usage:
  check_docs_links.py [repo_root]
"""

import os
import re
import sys

# [text](target) — target captured up to the closing paren; nested parens
# do not occur in this repo's docs.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SKIP_DIRS = {"build", ".git", ".ccache", "third_party"}
# Per-PR scratch files, not documentation.
SKIP_FILES = {"ISSUE.md"}
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_anchor(heading):
    """GitHub's heading -> anchor slug: lowercase, strip punctuation,
    spaces to hyphens. Close enough for the headings used here."""
    # Drop inline code ticks and links, keep their text.
    heading = heading.replace("`", "")
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    slug = []
    for ch in heading.strip().lower():
        if ch.isalnum():
            slug.append(ch)
        elif ch in " -_":
            slug.append("-" if ch in " -" else ch)
    return "".join(slug)


def anchors_of(path, cache={}):
    if path not in cache:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        cache[path] = {github_anchor(h) for h in HEADING_RE.findall(text)}
    return cache[path]


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md") and name not in SKIP_FILES:
                yield os.path.join(dirpath, name)


def check_file(md_path, root, errors):
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    # Ignore links inside fenced code blocks — they are examples, not
    # navigation.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    rel_md = os.path.relpath(md_path, root)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        path_part, _, fragment = target.partition("#")
        if not path_part:  # same-file anchor
            resolved = md_path
        else:
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), path_part))
        if not os.path.exists(resolved):
            errors.append(f"{rel_md}: broken link -> {target}")
            continue
        if fragment and resolved.endswith(".md"):
            if fragment not in anchors_of(resolved):
                errors.append(
                    f"{rel_md}: missing anchor -> {target} "
                    f"(no heading slugs to '{fragment}')")


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = []
    count = 0
    for md_path in sorted(markdown_files(root)):
        count += 1
        check_file(md_path, root, errors)
    if errors:
        print(f"docs link check FAILED ({len(errors)} broken links "
              f"across {count} files):", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    print(f"docs link check passed: {count} Markdown files, "
          f"all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
