#!/usr/bin/env python3
"""Bench-regression gate for the blocked sketch-build kernel.

Compares a freshly measured BENCH_kernels.json against the committed
baseline and fails (exit 1) when the blocked kernel's throughput regressed
by more than the tolerance.

Raw ns-per-pair-window numbers are machine-dependent — CI runners are not
the machine that produced the committed baseline — so the gate compares the
*blocked-vs-scalar speedup measured within one run*. The scalar reference
loop is deliberately plain (no tiling, no vectors beyond what the compiler
auto-emits), making it a stable yardstick across microarchitectures: a fresh
speedup below (1 - tolerance) x the baseline speedup means the blocked
kernel lost ground in hardware-normalized terms, i.e. a real code
regression rather than a slower runner.

Usage:
  check_bench_regression.py --baseline BENCH_kernels.json \
      --fresh build/BENCH_kernels.json [--tolerance 0.25]
"""

import argparse
import json
import sys


def load_entries(path):
    with open(path) as f:
        data = json.load(f)
    entries = {}
    for entry in data:
        key = (entry["kernel"], entry["n_series"])
        entries[key] = entry
    return entries


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_kernels.json")
    parser.add_argument("--fresh", required=True,
                        help="JSON emitted by this run's bench_microkernels")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup loss (default 0.25)")
    args = parser.parse_args()

    baseline = load_entries(args.baseline)
    fresh = load_entries(args.fresh)

    failures = []
    print(f"{'kernel':<16} {'n':>5} {'base speedup':>13} "
          f"{'fresh speedup':>14} {'floor':>8}  verdict")
    for key, base_entry in sorted(baseline.items()):
        kernel, n = key
        fresh_entry = fresh.get(key)
        if fresh_entry is None:
            failures.append(f"{kernel} n={n}: missing from fresh run")
            print(f"{kernel:<16} {n:>5} {'-':>13} {'-':>14} {'-':>8}  MISSING")
            continue
        base_speedup = base_entry["speedup"]
        fresh_speedup = fresh_entry["speedup"]
        floor = (1.0 - args.tolerance) * base_speedup
        ok = fresh_speedup >= floor
        print(f"{kernel:<16} {n:>5} {base_speedup:>13.3f} "
              f"{fresh_speedup:>14.3f} {floor:>8.3f}  "
              f"{'ok' if ok else 'REGRESSED'}")
        if not ok:
            failures.append(
                f"{kernel} n={n}: speedup {fresh_speedup:.3f} < floor "
                f"{floor:.3f} (baseline {base_speedup:.3f}, "
                f"tolerance {args.tolerance:.0%})")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
