#!/usr/bin/env python3
"""Bench-regression gate for the blocked kernels, query sweep, and serving.

Compares freshly measured bench JSON against the committed baselines and
fails (exit 1) when a hardware-normalized number regressed by more than the
tolerance.

Raw ns/ms numbers are machine-dependent — CI runners are not the machine
that produced the committed baselines — so every gated number is a ratio
measured *within one run*:

- kernels (BENCH_kernels.json): the blocked-vs-scalar speedup. The scalar
  reference loop is deliberately plain, making it a stable yardstick across
  microarchitectures: a fresh speedup below (1 - tolerance) x the baseline
  speedup means the blocked kernel lost ground in hardware-normalized
  terms, i.e. a real code regression rather than a slower runner.
- query sweep (BENCH_query.json): the exact-mode (jump=off) query's
  vectorized window-major sweep vs the scalar pair-major cell loop, same
  hardware-normalized treatment — plus two absolute within-run properties:
  speedup >= MIN_SWEEP_SPEEDUP at n_series >= 256 (the acceptance bar of
  the sweep kernel) and time-to-first-window strictly below the full sweep
  (the engine-level streaming property).
- serving (BENCH_serving.json): the warm/cold speedup of repeat queries
  (what the caches buy), the streaming path's time-to-first-window (what
  the window pipeline buys), and the approx tier's latency against the
  exact tier on uncached windows (what Eq. 2 jumping buys a
  deadline-bound client — an approx tier slower than exact has lost its
  reason to exist), plus the hard-deadline cancellation overshoot (how far
  past its deadline a mid-run abort terminates, gated at two band-widths
  of the injected per-band delay). All serving gates are *within-run* absolute
  properties — warm_speedup above a hardware-robust floor, ttfw strictly
  below full-query latency, approx at or below exact uncached — because
  cold latency parallelizes with core count while warm cache hits do not,
  so baseline-relative ratios would gate on the runner's hardware, not
  the code.

- wire (BENCH_wire.json): the network front end's loadgen. Latency
  percentiles are machine-dependent, so the gates are within-run
  invariants that hold on any hardware: zero transport failures and zero
  delivered-window accounting mismatches across all requests, every
  request completed, time-to-first-window at or below total latency at
  both gated percentiles (the streaming property — equality only when
  every response is a single flush), and the loadgen actually exercised
  the acceptance-criteria concurrency (>= 32 connections).

- wire shard scaling (--wire-shard-scaling, same BENCH_wire.json): the
  "wire_shard_cold" rows measure the same query served cold through a
  1-shard and a K-shard ShardRouter fan-out, within one run. Correctness
  invariants (zero failures/mismatches, every request completed, every
  shard saw every request) gate on any hardware; the scaling ratio —
  K=4 cold throughput >= 2.5x the K=1 row — only gates when the run had
  at least 4 cores (rows mark themselves "skipped" otherwise, where the
  ratio measures scheduler timeslicing, not the router's fan-out).

Usage:
  check_bench_regression.py --baseline BENCH_kernels.json \
      --fresh build/BENCH_kernels.json [--tolerance 0.25] \
      [--query-baseline BENCH_query.json \
       --query-fresh build/BENCH_query.json] \
      [--serving-baseline BENCH_serving.json \
       --serving-fresh build/BENCH_serving.json] \
      [--wire-baseline BENCH_wire.json \
       --wire-fresh build/BENCH_wire.json]
"""

import argparse
import json
import sys

# Absolute floor for the warm-repeat speedup: with working caches a warm
# query is a pure cache assembly and runs orders of magnitude faster than
# cold on every machine measured (>100x even on a 1-vCPU VM); a broken
# cache path collapses it to ~1x.
MIN_WARM_SPEEDUP = 25.0

# Absolute floor for the sweep-vs-scalar exact-query speedup at
# n_series >= 256: the vectorized banded sweep wins >= ~2.5x on measured
# machines; a sweep that cannot hold 2x over the deliberately plain scalar
# loop has lost its reason to exist (the band/kernel regressed), regardless
# of the runner.
MIN_SWEEP_SPEEDUP = 2.0
MIN_SWEEP_SPEEDUP_N = 256


def load_entries(path, key_fields):
    with open(path) as f:
        data = json.load(f)
    entries = {}
    for entry in data:
        key = tuple(entry.get(field) for field in key_fields)
        entries[key] = entry
    return entries


def check_ratio_floor(name, key, baseline, fresh, field, tolerance, failures):
    """Gates `field` (higher is better) at (1 - tolerance) x baseline."""
    base_value = baseline[field]
    fresh_value = fresh[field]
    floor = (1.0 - tolerance) * base_value
    ok = fresh_value >= floor
    print(f"{name:<20} {str(key):>14} {base_value:>13.3f} "
          f"{fresh_value:>14.3f} {floor:>8.3f}  "
          f"{'ok' if ok else 'REGRESSED'}")
    if not ok:
        failures.append(
            f"{name} {key}: {field} {fresh_value:.3f} < floor {floor:.3f} "
            f"(baseline {base_value:.3f}, tolerance {tolerance:.0%})")


def gate_kernels(baseline_path, fresh_path, tolerance, failures):
    baseline = load_entries(baseline_path, ("kernel", "n_series"))
    fresh = load_entries(fresh_path, ("kernel", "n_series"))
    print(f"{'bench':<20} {'key':>14} {'baseline':>13} "
          f"{'fresh':>14} {'bound':>8}  verdict")
    for key, base_entry in sorted(baseline.items()):
        fresh_entry = fresh.get(key)
        if fresh_entry is None:
            failures.append(f"kernel {key}: missing from fresh run")
            print(f"{'kernel':<20} {str(key):>14} {'-':>13} {'-':>14} "
                  f"{'-':>8}  MISSING")
            continue
        check_ratio_floor("kernel", key, base_entry, fresh_entry, "speedup",
                          tolerance, failures)


def gate_query(baseline_path, fresh_path, tolerance, failures):
    baseline = load_entries(baseline_path, ("bench", "n_series"))
    fresh = load_entries(fresh_path, ("bench", "n_series"))
    for key, base_entry in sorted(baseline.items()):
        bench, n = key
        fresh_entry = fresh.get(key)
        if fresh_entry is None:
            failures.append(f"{bench} n={n}: missing from fresh run")
            print(f"{bench:<20} {str(key):>14} {'-':>13} {'-':>14} "
                  f"{'-':>8}  MISSING")
            continue
        # Hardware-normalized floor against the committed baseline, like the
        # build kernels.
        check_ratio_floor(bench, key, base_entry, fresh_entry, "speedup",
                          tolerance, failures)
        # Absolute acceptance floor at scale: the sweep must hold >= 2x over
        # the scalar cell loop where it matters.
        if n >= MIN_SWEEP_SPEEDUP_N and \
                fresh_entry["speedup"] < MIN_SWEEP_SPEEDUP:
            failures.append(
                f"{bench} n={n}: speedup {fresh_entry['speedup']:.3f} < "
                f"absolute floor {MIN_SWEEP_SPEEDUP:.1f}")
        # Engine-level streaming: first window strictly before the full
        # sweep (the fraction itself is informational — band/num_windows).
        if fresh_entry["ttfw_ms"] >= fresh_entry["full_ms"]:
            failures.append(
                f"{bench} n={n}: engine ttfw {fresh_entry['ttfw_ms']:.3f} ms "
                f"is not below the full sweep "
                f"{fresh_entry['full_ms']:.3f} ms")


def gate_serving(baseline_path, fresh_path, failures):
    baseline = load_entries(baseline_path, ("bench", "n_series"))
    fresh = load_entries(fresh_path, ("bench", "n_series"))
    for key, base_entry in sorted(baseline.items()):
        bench, n = key
        fresh_entry = fresh.get(key)
        if fresh_entry is None:
            failures.append(f"{bench} n={n}: missing from fresh run")
            print(f"{bench:<20} {str(key):>14} {'-':>13} {'-':>14} "
                  f"{'-':>8}  MISSING")
            continue
        if bench == "serving_cold_warm":
            # The warm/cold ratio is core-count dependent (cold prepare +
            # evaluation parallelize; a warm cache hit does not), so a
            # baseline-relative floor would gate on the runner's hardware.
            # A broken cache collapses the ratio to ~1x regardless of
            # hardware, so an absolute floor is the robust regression net.
            floor = MIN_WARM_SPEEDUP
            fresh_speedup = fresh_entry["warm_speedup"]
            ok = fresh_speedup >= floor
            print(f"{bench:<20} {str(key):>14} "
                  f"{base_entry['warm_speedup']:>13.1f} "
                  f"{fresh_speedup:>14.1f} {floor:>8.1f}  "
                  f"{'ok' if ok else 'REGRESSED'}")
            if not ok:
                failures.append(
                    f"{bench} n={n}: warm_speedup {fresh_speedup:.1f} < "
                    f"absolute floor {floor:.1f} (baseline "
                    f"{base_entry['warm_speedup']:.1f} is informational)")
        elif bench == "serving_tiers":
            # Hard acceptance: the approx (Eq. 2 jumping) tier must answer
            # at or below the exact tier's uncached latency — both measured
            # within this run against one warm sketch, so the ratio is
            # hardware-independent. The speedup magnitude is informational
            # (it tracks how much the workload's correlations sit below
            # threshold); approx > exact means the jumping path regressed.
            ok = fresh_entry["approx_ms"] <= fresh_entry["exact_uncached_ms"]
            print(f"{bench:<20} {str(key):>14} "
                  f"{base_entry['approx_speedup']:>13.2f} "
                  f"{fresh_entry['approx_speedup']:>14.2f} {'>= 1.0':>8}  "
                  f"{'ok' if ok else 'REGRESSED'}")
            if not ok:
                failures.append(
                    f"{bench} n={n}: approx {fresh_entry['approx_ms']:.3f} ms "
                    f"is above the exact uncached latency "
                    f"{fresh_entry['exact_uncached_ms']:.3f} ms")
        elif bench == "serving_streaming":
            # Hard acceptance: first window strictly before the full query.
            # The fraction itself is informational only — it shifts with the
            # runner's core count (prepare parallelizes differently), so a
            # baseline ceiling on it would gate on hardware, not code.
            ok = fresh_entry["ttfw_ms"] < fresh_entry["cold_full_ms"]
            print(f"{bench:<20} {str(key):>14} "
                  f"{base_entry['ttfw_fraction']:>13.4f} "
                  f"{fresh_entry['ttfw_fraction']:>14.4f} {'< 1.0':>8}  "
                  f"{'ok' if ok else 'REGRESSED'}")
            if not ok:
                failures.append(
                    f"{bench} n={n}: ttfw {fresh_entry['ttfw_ms']:.3f} ms is "
                    f"not below full-query latency "
                    f"{fresh_entry['cold_full_ms']:.3f} ms")
        elif bench == "hard_deadline_cancel":
            # Hard acceptance: a mid-run deadline abort must land within two
            # band-widths of the deadline (the sweep checks the deadline at
            # band granularity, so one band of in-flight work plus delivery
            # is the design bound). The injected band delay dominates real
            # band cost, making the bound hardware-independent; a small
            # absolute floor absorbs scheduler jitter on near-zero
            # overshoots. Skipped rows (DANGORON_FAILPOINTS=OFF builds)
            # pass vacuously.
            if base_entry.get("skipped") or fresh_entry.get("skipped"):
                print(f"{bench:<20} {str(key):>14} {'-':>13} {'-':>14} "
                      f"{'-':>8}  skipped (failpoints off)")
                continue
            overshoot_bands = fresh_entry["overshoot_bands"]
            overshoot_ms = fresh_entry["overshoot_ms"]
            ok = overshoot_bands <= 2.0 or overshoot_ms <= 5.0
            print(f"{bench:<20} {str(key):>14} "
                  f"{base_entry['overshoot_bands']:>13.2f} "
                  f"{overshoot_bands:>14.2f} {'<= 2.0':>8}  "
                  f"{'ok' if ok else 'REGRESSED'}")
            if not ok:
                failures.append(
                    f"{bench} n={n}: deadline overshoot "
                    f"{overshoot_ms:.3f} ms = {overshoot_bands:.2f} "
                    f"band-widths, above the 2-band cancellation bound")


# The acceptance-criteria concurrency of the wire front end: the committed
# loadgen run must drive at least this many concurrent connections.
MIN_WIRE_CONNECTIONS = 32


def gate_wire(baseline_path, fresh_path, failures):
    baseline = load_entries(baseline_path, ("bench", "connections", "shards"))
    fresh = load_entries(fresh_path, ("bench", "connections", "shards"))
    for key, base_entry in sorted(
            (k, v) for k, v in baseline.items() if k[0] == "wire_load"):
        bench, connections, _ = key
        fresh_entry = fresh.get(key)
        if fresh_entry is None:
            failures.append(f"{bench} c={connections}: missing from fresh run")
            print(f"{bench:<20} {str(key):>14} {'-':>13} {'-':>14} "
                  f"{'-':>8}  MISSING")
            continue
        # Correctness invariants of the run itself: every request completed,
        # none failed, and every response delivered exactly the windows its
        # terminal status claimed. These hold on any hardware; a miss is a
        # wire-layer bug (lost frames, leaked streams), never a slow runner.
        problems = []
        if fresh_entry["connections"] < MIN_WIRE_CONNECTIONS:
            problems.append(
                f"only {fresh_entry['connections']} connections, "
                f"acceptance floor is {MIN_WIRE_CONNECTIONS}")
        if fresh_entry["failures"] != 0:
            problems.append(f"{fresh_entry['failures']} transport failures")
        if fresh_entry["window_mismatches"] != 0:
            problems.append(
                f"{fresh_entry['window_mismatches']} delivered-window "
                f"accounting mismatches")
        if fresh_entry["completed"] != fresh_entry["total_requests"]:
            problems.append(
                f"completed {fresh_entry['completed']} of "
                f"{fresh_entry['total_requests']} requests")
        # Streaming property at both gated percentiles: the first window of
        # a response cannot arrive after its last (<= because a short warm
        # response can land in one flush, making the two equal).
        for percentile in ("p50", "p99"):
            ttfw = fresh_entry[f"ttfw_{percentile}_ms"]
            total = fresh_entry[f"{percentile}_ms"]
            if ttfw > total:
                problems.append(
                    f"ttfw_{percentile} {ttfw:.3f} ms above total "
                    f"{percentile} {total:.3f} ms")
        ok = not problems
        print(f"{bench:<20} {str(key):>14} "
              f"{base_entry['p50_ms']:>13.3f} "
              f"{fresh_entry['p50_ms']:>14.3f} {'invariant':>9}  "
              f"{'ok' if ok else 'REGRESSED'}")
        for problem in problems:
            failures.append(f"{bench} c={connections}: {problem}")


# The router's acceptance bar: cold exact throughput at K=4 shards must be
# at least this multiple of the K=1 row, measured within one run on a
# machine with >= 4 cores (below that the shards timeslice one core and the
# ratio measures the scheduler).
MIN_SHARD_SCALING = 2.5
SHARD_SCALING_K = 4


def gate_wire_shard_scaling(baseline_path, fresh_path, failures):
    baseline = load_entries(baseline_path, ("bench", "shards"))
    fresh = load_entries(fresh_path, ("bench", "shards"))
    fresh_by_k = {}
    for key, base_entry in sorted(
            (k, v) for k, v in baseline.items() if k[0] == "wire_shard_cold"):
        bench, shards = key
        fresh_entry = fresh.get(key)
        if fresh_entry is None:
            failures.append(f"{bench} K={shards}: missing from fresh run")
            print(f"{bench:<20} {str(key):>14} {'-':>13} {'-':>14} "
                  f"{'-':>8}  MISSING")
            continue
        fresh_by_k[shards] = fresh_entry
        # Correctness invariants gate on any hardware, skipped or not: a
        # failure or a shard that missed a request is a router bug, never a
        # slow runner.
        problems = []
        if fresh_entry["failures"] != 0:
            problems.append(f"{fresh_entry['failures']} failures")
        if fresh_entry["window_mismatches"] != 0:
            problems.append(
                f"{fresh_entry['window_mismatches']} delivered-window "
                f"accounting mismatches")
        if fresh_entry["completed"] != fresh_entry["total_requests"]:
            problems.append(
                f"completed {fresh_entry['completed']} of "
                f"{fresh_entry['total_requests']} requests")
        per_shard = fresh_entry["per_shard_requests"]
        if len(per_shard) != shards or \
                any(n != fresh_entry["total_requests"] for n in per_shard):
            problems.append(
                f"per-shard request counts {per_shard} != "
                f"{fresh_entry['total_requests']} on each of {shards} shards")
        for percentile in ("p50", "p99"):
            ttfw = fresh_entry[f"ttfw_{percentile}_ms"]
            total = fresh_entry[f"{percentile}_ms"]
            if ttfw > total:
                problems.append(
                    f"ttfw_{percentile} {ttfw:.3f} ms above total "
                    f"{percentile} {total:.3f} ms")
        ok = not problems
        print(f"{bench:<20} {str(key):>14} "
              f"{base_entry['throughput_rps']:>13.2f} "
              f"{fresh_entry['throughput_rps']:>14.2f} {'invariant':>9}  "
              f"{'ok' if ok else 'REGRESSED'}")
        for problem in problems:
            failures.append(f"{bench} K={shards}: {problem}")

    one = fresh_by_k.get(1)
    gated = fresh_by_k.get(SHARD_SCALING_K)
    if one is None or gated is None:
        failures.append(
            f"wire_shard_cold: need both K=1 and K={SHARD_SCALING_K} rows "
            f"for the scaling gate, have K={sorted(fresh_by_k)}")
        return
    if one.get("skipped") or gated.get("skipped"):
        print(f"{'wire_shard_scaling':<20} {'K=' + str(SHARD_SCALING_K):>14} "
              f"{'-':>13} {'-':>14} {'-':>8}  skipped "
              f"(only {gated.get('cores')} cores)")
        return
    ratio = (gated["throughput_rps"] / one["throughput_rps"]
             if one["throughput_rps"] > 0 else 0.0)
    ok = ratio >= MIN_SHARD_SCALING
    print(f"{'wire_shard_scaling':<20} {'K=' + str(SHARD_SCALING_K):>14} "
          f"{one['throughput_rps']:>13.2f} {gated['throughput_rps']:>14.2f} "
          f"{'>= ' + format(MIN_SHARD_SCALING, '.1f') + 'x':>8}  "
          f"{'ok' if ok else 'REGRESSED'}")
    if not ok:
        failures.append(
            f"wire_shard_cold: K={SHARD_SCALING_K} cold throughput "
            f"{gated['throughput_rps']:.2f} rps is {ratio:.2f}x the K=1 "
            f"row ({one['throughput_rps']:.2f} rps), below the "
            f"{MIN_SHARD_SCALING:.1f}x scaling floor")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_kernels.json")
    parser.add_argument("--fresh", required=True,
                        help="JSON emitted by this run's bench_microkernels")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup loss (default 0.25)")
    parser.add_argument("--query-baseline",
                        help="committed BENCH_query.json")
    parser.add_argument("--query-fresh",
                        help="JSON emitted by this run's bench_query_time")
    parser.add_argument("--serving-baseline",
                        help="committed BENCH_serving.json")
    parser.add_argument("--serving-fresh",
                        help="JSON emitted by this run's bench_serving")
    parser.add_argument("--wire-baseline",
                        help="committed BENCH_wire.json")
    parser.add_argument("--wire-fresh",
                        help="JSON emitted by this run's bench_wire")
    parser.add_argument("--wire-shard-scaling", action="store_true",
                        help="also gate the wire_shard_cold rows: K=4 cold "
                             "throughput >= 2.5x K=1 (vacuous below 4 cores)")
    args = parser.parse_args()

    failures = []
    gate_kernels(args.baseline, args.fresh, args.tolerance, failures)
    if args.query_baseline and args.query_fresh:
        gate_query(args.query_baseline, args.query_fresh, args.tolerance,
                   failures)
    elif args.query_baseline or args.query_fresh:
        print("need both --query-baseline and --query-fresh",
              file=sys.stderr)
        return 2
    if args.serving_baseline and args.serving_fresh:
        gate_serving(args.serving_baseline, args.serving_fresh, failures)
    elif args.serving_baseline or args.serving_fresh:
        print("need both --serving-baseline and --serving-fresh",
              file=sys.stderr)
        return 2
    if args.wire_baseline and args.wire_fresh:
        gate_wire(args.wire_baseline, args.wire_fresh, failures)
        if args.wire_shard_scaling:
            gate_wire_shard_scaling(args.wire_baseline, args.wire_fresh,
                                    failures)
    elif args.wire_baseline or args.wire_fresh:
        print("need both --wire-baseline and --wire-fresh", file=sys.stderr)
        return 2
    elif args.wire_shard_scaling:
        print("--wire-shard-scaling needs --wire-baseline/--wire-fresh",
              file=sys.stderr)
        return 2

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
